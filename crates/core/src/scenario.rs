//! The Scenario API: experiments as data.
//!
//! The paper's evaluation is a grid of measurements over a small design
//! space: pick systems ([`SystemSpec`]), pick a workload ([`WorkloadSpec`]),
//! pick a driver regime ([`DriverConfig`]), vary one axis ([`Sweep`]), read a
//! handful of metrics off every run. This module captures that shape
//! declaratively:
//!
//! * a [`Scenario`] is the `{systems, workload, driver, sweep}` description;
//!   [`Scenario::plan`] expands it into an [`ExperimentPlan`];
//! * an [`ExperimentPlan`] is the fully elaborated grid — labelled rows of
//!   [`Probe`]s with the columns each probe reports — and is what the one
//!   generic engine, [`run_plan`], executes;
//! * every `figNN_*`/`tabNN_*` function in [`crate::experiments`] is now a
//!   small plan constructor; none of them contains a measurement loop.
//!
//! New experiments therefore cost one spec: compose a `SystemSpec` (any
//! point in the taxonomy the registry can build), name a workload, choose a
//! sweep, and hand the plan to `run_plan` — or to the `repro` binary, which
//! can serialize any report as JSON.
//!
//! ```
//! use dichotomy_core::scenario::{ColumnSpec, Metric, Scenario, Sweep, SystemEntry, run_plan};
//! use dichotomy_core::driver::DriverConfig;
//! use dichotomy_systems::{SystemKind, SystemSpec};
//! use dichotomy_workload::{WorkloadSpec, YcsbMix};
//!
//! let scenario = Scenario {
//!     id: "Ad hoc",
//!     title: "etcd update throughput vs skew",
//!     systems: vec![SystemEntry {
//!         spec: SystemSpec::new(SystemKind::Etcd),
//!         columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
//!     }],
//!     workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(1_000),
//!     driver: DriverConfig::saturating(200),
//!     sweep: Sweep::Theta(vec![0.0, 0.9]),
//!     row_labels: None,
//!     faults: None,
//!     seed: 7,
//! };
//! let report = run_plan(&scenario.plan());
//! assert_eq!(report.rows.len(), 2);
//! ```

use std::collections::BTreeMap;

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{AbortReason, Hash, Key, Value};
use dichotomy_hybrid::{all_systems, forecast_throughput, HybridSpec};
use dichotomy_merkle::{MerkleBucketTree, MerklePatriciaTrie};
use dichotomy_simnet::{CostModel, FaultPlan, NetworkConfig};
use dichotomy_systems::{SystemRegistry, SystemSpec};
use dichotomy_workload::WorkloadSpec;

use crate::driver::{run_workload, DriverConfig};
use crate::experiments::{ExperimentReport, Row, RowSeries};
use crate::metrics::Metrics;

/// What one column reads off an executed probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Committed transactions per second of simulated time.
    ThroughputTps,
    /// Aborts as a percentage of finished transactions.
    AbortPercent,
    /// Aborts attributed to one reason, as a percentage of finished
    /// transactions.
    AbortSharePercent(AbortReason),
    /// Mean commit latency in milliseconds.
    LatencyMeanMs,
    /// Mean latency of one named pipeline phase, in milliseconds.
    PhaseMeanMs(&'static str),
    /// Mean latency of one named pipeline phase, in microseconds.
    PhaseMeanUs(&'static str),
    /// State bytes (payload + index) per driven record.
    StateBytesPerRecord,
    /// History bytes (ledger blocks, WAL, old versions) per driven record.
    HistoryBytesPerRecord,
    /// Total storage bytes per driven record.
    TotalBytesPerRecord,
    /// A probe-computed named value (non-driving probes).
    Extra(&'static str),
}

/// One named column of a report row.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name, exactly as rendered.
    pub name: String,
    /// What to extract.
    pub metric: Metric,
}

impl ColumnSpec {
    /// A column reading `metric` under `name`.
    pub fn new(name: impl Into<String>, metric: Metric) -> Self {
        ColumnSpec {
            name: name.into(),
            metric,
        }
    }
}

/// One measurement a plan schedules. (`Drive` dominates the size — that is
/// fine, probes are plan data constructed once per cell, not a hot type.)
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum Probe {
    /// Build the system, build the workload, drive it, read metrics and the
    /// storage footprint.
    Drive {
        /// The system under test.
        system: SystemSpec,
        /// The workload description.
        workload: WorkloadSpec,
        /// The driver regime.
        driver: DriverConfig,
    },
    /// Populate the two authenticated indexes (MBT vs MPT) and report their
    /// per-record storage (Figure 13). Extras: `mbt_b_per_rec`,
    /// `mpt_b_per_rec`.
    AdrOverhead {
        /// Records inserted into each index.
        records: u64,
        /// Value size per record.
        record_size: usize,
    },
    /// The Section 5.6 forecast for a Table 2 profile. Extras: `band`,
    /// `forecast_tps`, `reported_tps`.
    Forecast {
        /// Profile name as it appears in `dichotomy_hybrid::all_systems`.
        profile: &'static str,
    },
}

/// A probe plus the columns it contributes to its row.
#[derive(Debug, Clone)]
pub struct PlannedRun {
    /// The measurement.
    pub probe: Probe,
    /// The columns read off it, in rendering order.
    pub columns: Vec<ColumnSpec>,
}

/// One labelled report row: the concatenated columns of its runs.
#[derive(Debug, Clone)]
pub struct PlannedRow {
    /// Row label, exactly as rendered.
    pub label: String,
    /// The measurements backing the row.
    pub runs: Vec<PlannedRun>,
}

/// A fully elaborated experiment: what [`run_plan`] executes.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// Report id ("Figure 4", ...).
    pub id: &'static str,
    /// Report title.
    pub title: &'static str,
    /// The measurement grid.
    pub rows: Vec<PlannedRow>,
    /// Pre-rendered text for qualitative experiments (Table 2); rendered
    /// verbatim instead of the row grid when present.
    pub text: Option<String>,
}

impl ExperimentPlan {
    /// Number of probes the plan schedules.
    pub fn probe_count(&self) -> usize {
        self.rows.iter().map(|r| r.runs.len()).sum()
    }
}

/// The axis a [`Scenario`] varies — one knob, many points.
#[derive(Debug, Clone)]
pub enum Sweep {
    /// No sweep: one row per system.
    None,
    /// Replica count.
    Nodes(Vec<usize>),
    /// Zipfian skew θ.
    Theta(Vec<f64>),
    /// Operations per transaction; when `payload_bytes` is set the record
    /// size shrinks so the total transaction payload stays constant
    /// (Figure 10's axis).
    OpsPerTxn {
        /// The operation counts.
        counts: Vec<usize>,
        /// Total transaction payload to hold constant, if any.
        payload_bytes: Option<usize>,
    },
    /// Record (value) size in bytes.
    RecordSize(Vec<usize>),
    /// Shard count.
    Shards(Vec<u32>),
    /// Offered load in transactions per second.
    OfferedTps(Vec<f64>),
}

impl Sweep {
    /// Number of sweep points (0 for [`Sweep::None`]).
    pub fn len(&self) -> usize {
        match self {
            Sweep::None => 0,
            Sweep::Nodes(v) => v.len(),
            Sweep::Theta(v) => v.len(),
            Sweep::OpsPerTxn { counts, .. } => counts.len(),
            Sweep::RecordSize(v) => v.len(),
            Sweep::Shards(v) => v.len(),
            Sweep::OfferedTps(v) => v.len(),
        }
    }

    /// Whether there are no sweep points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Default row label for point `i`.
    fn label(&self, i: usize) -> String {
        match self {
            Sweep::None => String::new(),
            Sweep::Nodes(v) => format!("{} nodes", v[i]),
            Sweep::Theta(v) => format!("theta={:.1}", v[i]),
            Sweep::OpsPerTxn { counts, .. } => format!("{} ops/txn", counts[i]),
            Sweep::RecordSize(v) => format!("{} B", v[i]),
            Sweep::Shards(v) => format!("{} shards", v[i]),
            Sweep::OfferedTps(v) => format!("{} tps", v[i]),
        }
    }

    /// Apply point `i` to the components of one run.
    fn apply(
        &self,
        i: usize,
        spec: &mut SystemSpec,
        workload: &mut WorkloadSpec,
        driver: &mut DriverConfig,
    ) {
        match self {
            Sweep::None => {}
            Sweep::Nodes(v) => spec.nodes = Some(v[i]),
            Sweep::Theta(v) => *workload = workload.clone().with_theta(v[i]),
            Sweep::OpsPerTxn {
                counts,
                payload_bytes,
            } => {
                let ops = counts[i].max(1);
                *workload = workload.clone().with_ops_per_txn(ops);
                if let Some(total) = payload_bytes {
                    *workload = workload.clone().with_record_size(total / ops);
                }
            }
            Sweep::RecordSize(v) => *workload = workload.clone().with_record_size(v[i]),
            Sweep::Shards(v) => spec.shards = Some(v[i]),
            Sweep::OfferedTps(v) => driver.offered_tps = v[i],
        }
    }
}

/// One system's role in a scenario: its spec and the columns its runs
/// contribute to every row.
#[derive(Debug, Clone)]
pub struct SystemEntry {
    /// The system under test.
    pub spec: SystemSpec,
    /// Columns read off each of its runs.
    pub columns: Vec<ColumnSpec>,
}

/// A declarative experiment: systems × workload × driver × sweep.
///
/// With a sweep, rows are sweep points and every system runs at every point;
/// without one, rows are the systems themselves. The scenario's `seed` is
/// threaded into every component, so two plans expanded from the same
/// scenario reproduce bit for bit and a different seed legitimately differs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Report id.
    pub id: &'static str,
    /// Report title.
    pub title: &'static str,
    /// The systems under test, with their report columns.
    pub systems: Vec<SystemEntry>,
    /// The workload every run draws from.
    pub workload: WorkloadSpec,
    /// The driver regime.
    pub driver: DriverConfig,
    /// The varied axis.
    pub sweep: Sweep,
    /// Row label overrides (must match the number of rows when set).
    pub row_labels: Option<Vec<String>>,
    /// Fault schedule injected into every system that does not carry its
    /// own — crash/partition experiments as declarative plans.
    pub faults: Option<FaultPlan>,
    /// RNG seed threaded through systems, workload and driver.
    pub seed: u64,
}

impl Scenario {
    /// Expand into the fully elaborated grid.
    pub fn plan(&self) -> ExperimentPlan {
        if let Some(labels) = &self.row_labels {
            let expected = if self.sweep.is_empty() {
                self.systems.len()
            } else {
                self.sweep.len()
            };
            assert_eq!(
                labels.len(),
                expected,
                "scenario '{}': row_labels has {} entries but the plan has {} rows",
                self.id,
                labels.len(),
                expected
            );
        }
        let driver = self.driver.clone().with_seed(self.seed);
        let workload = self.workload.clone().with_seed(self.seed);
        let seeded_spec = |entry: &SystemEntry| {
            let mut spec = entry.spec.clone();
            if spec.seed.is_none() {
                spec.seed = Some(self.seed);
            }
            if spec.faults.is_none() {
                spec.faults = self.faults.clone();
            }
            spec
        };
        let rows = if self.sweep.is_empty() {
            // One row per system.
            self.systems
                .iter()
                .enumerate()
                .map(|(i, entry)| PlannedRow {
                    label: self.row_label(i).unwrap_or_else(|| entry.spec.label()),
                    runs: vec![PlannedRun {
                        probe: Probe::Drive {
                            system: seeded_spec(entry),
                            workload: workload.clone(),
                            driver: driver.clone(),
                        },
                        columns: entry.columns.clone(),
                    }],
                })
                .collect()
        } else {
            // One row per sweep point, every system measured at each point.
            (0..self.sweep.len())
                .map(|i| PlannedRow {
                    label: self.row_label(i).unwrap_or_else(|| self.sweep.label(i)),
                    runs: self
                        .systems
                        .iter()
                        .map(|entry| {
                            let mut spec = seeded_spec(entry);
                            let mut wl = workload.clone();
                            let mut drv = driver.clone();
                            self.sweep.apply(i, &mut spec, &mut wl, &mut drv);
                            PlannedRun {
                                probe: Probe::Drive {
                                    system: spec,
                                    workload: wl,
                                    driver: drv,
                                },
                                columns: entry.columns.clone(),
                            }
                        })
                        .collect(),
                })
                .collect()
        };
        ExperimentPlan {
            id: self.id,
            title: self.title,
            rows,
            text: None,
        }
    }

    fn row_label(&self, i: usize) -> Option<String> {
        self.row_labels.as_ref().map(|labels| labels[i].clone())
    }
}

/// What a probe produced, before column extraction.
struct Observation {
    metrics: Metrics,
    footprint: StorageBreakdown,
    records: u64,
    extras: BTreeMap<&'static str, f64>,
    /// Windowed time series (driving probes only), with the probe's label.
    series: Option<RowSeries>,
}

/// Execute a plan with the built-in system registry.
pub fn run_plan(plan: &ExperimentPlan) -> ExperimentReport {
    run_plan_with(plan, &SystemRegistry::with_builtins())
}

/// Execute a plan, building systems through `registry`.
///
/// Panics if a spec's kind has no registered builder — the `repro` binary
/// turns per-experiment panics into a failure summary.
pub fn run_plan_with(plan: &ExperimentPlan, registry: &SystemRegistry) -> ExperimentReport {
    let rows = plan
        .rows
        .iter()
        .map(|row| {
            let mut values = Vec::new();
            let mut series = Vec::new();
            for run in &row.runs {
                let (run_values, run_series) = execute(run, registry);
                values.extend(run_values);
                series.extend(run_series);
            }
            Row {
                label: row.label.clone(),
                values,
                series,
            }
        })
        .collect();
    ExperimentReport {
        id: plan.id,
        title: plan.title,
        rows,
        text: plan.text.clone(),
    }
}

fn execute(run: &PlannedRun, registry: &SystemRegistry) -> (Vec<(String, f64)>, Option<RowSeries>) {
    let observation = observe(&run.probe, registry);
    let values = run
        .columns
        .iter()
        .map(|column| (column.name.clone(), extract(&observation, &column.metric)))
        .collect();
    (values, observation.series)
}

fn observe(probe: &Probe, registry: &SystemRegistry) -> Observation {
    match probe {
        Probe::Drive {
            system,
            workload,
            driver,
        } => {
            let mut sys = registry
                .build(system)
                .unwrap_or_else(|e| panic!("cannot build {}: {e}", system.label()));
            let mut wl = workload.build();
            let stats = run_workload(sys.as_mut(), wl.as_mut(), driver);
            Observation {
                metrics: stats.metrics,
                footprint: sys.footprint(),
                records: driver.transactions,
                extras: BTreeMap::new(),
                series: Some(RowSeries {
                    name: system.label(),
                    series: stats.series,
                }),
            }
        }
        Probe::AdrOverhead {
            records,
            record_size,
        } => {
            let mut mbt = MerkleBucketTree::fabric_default();
            let mut mpt = MerklePatriciaTrie::new();
            for i in 0..*records {
                // 16-byte keys, as in the paper's setup.
                let key = Key::new(Hash::of(&i.to_be_bytes()).0[..16].to_vec());
                let value = Value::filler(*record_size);
                mbt.put(&key, &value);
                mpt.insert(&key, &value);
            }
            let per_rec = |fp: StorageBreakdown| fp.total() as f64 / (*records).max(1) as f64;
            let mut extras = BTreeMap::new();
            extras.insert(
                "mbt_b_per_rec",
                *record_size as f64 + per_rec(mbt.footprint()),
            );
            extras.insert("mpt_b_per_rec", per_rec(mpt.footprint()));
            Observation {
                metrics: Metrics::default(),
                footprint: StorageBreakdown::default(),
                records: *records,
                extras,
                series: None,
            }
        }
        Probe::Forecast { profile } => {
            let profiles = all_systems();
            let p = profiles
                .iter()
                .find(|s| s.name == *profile)
                .unwrap_or_else(|| panic!("unknown Table 2 profile '{profile}'"));
            let spec = HybridSpec::from_profile(p);
            let forecast =
                forecast_throughput(&spec, &NetworkConfig::lan_1gbps(), &CostModel::calibrated());
            let mut extras = BTreeMap::new();
            extras.insert("band", spec.band() as u8 as f64);
            extras.insert("forecast_tps", forecast);
            extras.insert("reported_tps", p.reported_tps.unwrap_or(f64::NAN));
            Observation {
                metrics: Metrics::default(),
                footprint: StorageBreakdown::default(),
                records: 0,
                extras,
                series: None,
            }
        }
    }
}

fn extract(obs: &Observation, metric: &Metric) -> f64 {
    let phase = |name: &str| obs.metrics.phase_means_us.get(name).copied().unwrap_or(0.0);
    let records = obs.records.max(1) as f64;
    match metric {
        Metric::ThroughputTps => obs.metrics.throughput_tps,
        Metric::AbortPercent => obs.metrics.abort_rate_percent(),
        Metric::AbortSharePercent(reason) => obs.metrics.abort_share_percent(*reason),
        Metric::LatencyMeanMs => obs.metrics.latency.mean_us / 1000.0,
        Metric::PhaseMeanMs(name) => phase(name) / 1000.0,
        Metric::PhaseMeanUs(name) => phase(name),
        Metric::StateBytesPerRecord => {
            (obs.footprint.payload_bytes + obs.footprint.index_bytes) as f64 / records
        }
        Metric::HistoryBytesPerRecord => obs.footprint.history_bytes as f64 / records,
        Metric::TotalBytesPerRecord => obs.footprint.total() as f64 / records,
        Metric::Extra(key) => obs.extras.get(key).copied().unwrap_or(f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_systems::SystemKind;
    use dichotomy_workload::YcsbMix;

    fn tiny_scenario(seed: u64) -> Scenario {
        Scenario {
            id: "T",
            title: "tiny",
            systems: vec![SystemEntry {
                spec: SystemSpec::new(SystemKind::Etcd),
                columns: vec![
                    ColumnSpec::new("tps", Metric::ThroughputTps),
                    ColumnSpec::new("abort_%", Metric::AbortPercent),
                ],
            }],
            workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(500),
            driver: DriverConfig::saturating(150),
            sweep: Sweep::None,
            row_labels: None,
            faults: None,
            seed,
        }
    }

    #[test]
    fn sweepless_scenarios_have_one_row_per_system() {
        let report = run_plan(&tiny_scenario(1).plan());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].label, "etcd");
        assert!(report.value("etcd", "tps").unwrap() > 0.0);
        assert_eq!(report.value("etcd", "abort_%").unwrap(), 0.0);
    }

    #[test]
    fn sweeps_expand_to_one_row_per_point() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::Theta(vec![0.0, 0.5, 1.0]);
        let plan = scenario.plan();
        assert_eq!(plan.rows.len(), 3);
        assert_eq!(plan.rows[1].label, "theta=0.5");
        assert_eq!(plan.probe_count(), 3);
        let report = run_plan(&plan);
        assert!(report.value("theta=1.0", "tps").unwrap() > 0.0);
    }

    #[test]
    fn row_label_overrides_win() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::Nodes(vec![3, 5]);
        scenario.row_labels = Some(vec!["small".into(), "large".into()]);
        let plan = scenario.plan();
        assert_eq!(plan.rows[0].label, "small");
        assert_eq!(plan.rows[1].label, "large");
    }

    #[test]
    fn node_sweeps_reach_the_built_system() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::Nodes(vec![3, 7]);
        let plan = scenario.plan();
        match &plan.rows[1].runs[0].probe {
            Probe::Drive { system, .. } => assert_eq!(system.nodes, Some(7)),
            _ => panic!("expected a drive probe"),
        }
    }

    #[test]
    fn ops_sweep_keeps_total_payload_constant() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::OpsPerTxn {
            counts: vec![1, 4],
            payload_bytes: Some(1000),
        };
        let plan = scenario.plan();
        match &plan.rows[1].runs[0].probe {
            Probe::Drive { workload, .. } => match workload {
                WorkloadSpec::Ycsb(c) => {
                    assert_eq!(c.ops_per_txn, 4);
                    assert_eq!(c.record_size, 250);
                }
                _ => panic!("expected YCSB"),
            },
            _ => panic!("expected a drive probe"),
        }
    }

    #[test]
    fn same_seed_reproduces_and_seeds_thread_through() {
        let a = run_plan(&tiny_scenario(42).plan());
        let b = run_plan(&tiny_scenario(42).plan());
        assert_eq!(a.rows[0].values, b.rows[0].values);
        match &tiny_scenario(42).plan().rows[0].runs[0].probe {
            Probe::Drive {
                system,
                workload,
                driver,
            } => {
                assert_eq!(system.seed, Some(42));
                assert_eq!(workload.seed(), 42);
                assert_eq!(driver.seed, 42);
            }
            _ => panic!("expected a drive probe"),
        }
    }

    #[test]
    fn forecast_and_adr_probes_fill_extras() {
        let plan = ExperimentPlan {
            id: "X",
            title: "probes",
            rows: vec![
                PlannedRow {
                    label: "Veritas".into(),
                    runs: vec![PlannedRun {
                        probe: Probe::Forecast { profile: "Veritas" },
                        columns: vec![
                            ColumnSpec::new("forecast_tps", Metric::Extra("forecast_tps")),
                            ColumnSpec::new("reported_tps", Metric::Extra("reported_tps")),
                        ],
                    }],
                },
                PlannedRow {
                    label: "100 B".into(),
                    runs: vec![PlannedRun {
                        probe: Probe::AdrOverhead {
                            records: 200,
                            record_size: 100,
                        },
                        columns: vec![
                            ColumnSpec::new("MBT_B/rec", Metric::Extra("mbt_b_per_rec")),
                            ColumnSpec::new("MPT_B/rec", Metric::Extra("mpt_b_per_rec")),
                        ],
                    }],
                },
            ],
            text: None,
        };
        let report = run_plan(&plan);
        assert!(report.value("Veritas", "forecast_tps").unwrap() > 0.0);
        assert_eq!(report.value("Veritas", "reported_tps").unwrap(), 29_000.0);
        let mbt = report.value("100 B", "MBT_B/rec").unwrap();
        let mpt = report.value("100 B", "MPT_B/rec").unwrap();
        assert!(mpt > mbt);
    }
}
