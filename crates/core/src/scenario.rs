//! The Scenario API: experiments as data.
//!
//! The paper's evaluation is a grid of measurements over a small design
//! space: pick systems ([`SystemSpec`]), pick a workload ([`WorkloadSpec`]),
//! pick a driver regime ([`DriverConfig`]), vary one axis ([`Sweep`]), read a
//! handful of metrics off every run. This module captures that shape
//! declaratively:
//!
//! * a [`Scenario`] is the `{systems, workload, driver, sweep}` description;
//!   [`Scenario::plan`] expands it into an [`ExperimentPlan`];
//! * an [`ExperimentPlan`] is the fully elaborated grid — labelled rows of
//!   [`Probe`]s with the columns each probe reports — and is what the one
//!   generic engine, [`run_plan`], executes;
//! * every `figNN_*`/`tabNN_*` function in [`crate::experiments`] is now a
//!   small plan constructor; none of them contains a measurement loop.
//!
//! New experiments therefore cost one spec: compose a `SystemSpec` (any
//! point in the taxonomy the registry can build), name a workload, choose a
//! sweep, and hand the plan to `run_plan` — or to the `repro` binary, which
//! can serialize any report as JSON.
//!
//! ```
//! use dichotomy_core::scenario::{ColumnSpec, Metric, Scenario, Sweep, SystemEntry, run_plan};
//! use dichotomy_core::driver::DriverConfig;
//! use dichotomy_systems::{SystemKind, SystemSpec};
//! use dichotomy_workload::{WorkloadSpec, YcsbMix};
//!
//! let scenario = Scenario {
//!     id: "Ad hoc",
//!     title: "etcd update throughput vs skew",
//!     systems: vec![SystemEntry {
//!         spec: SystemSpec::new(SystemKind::Etcd),
//!         columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
//!     }],
//!     workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(1_000),
//!     driver: DriverConfig::saturating(200),
//!     sweep: Sweep::Theta(vec![0.0, 0.9]),
//!     row_labels: None,
//!     faults: None,
//!     seed: 7,
//! };
//! let report = run_plan(&scenario.plan());
//! assert_eq!(report.rows.len(), 2);
//! ```

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use dichotomy_common::size::{StorageBreakdown, StorageFootprint};
use dichotomy_common::{AbortReason, Decode, Diagnostic, Encode, Hash, Key, Value};
use dichotomy_hybrid::{all_systems, forecast_throughput, forecast_txn_cost_us, HybridSpec};
use dichotomy_merkle::{MerkleBucketTree, MerklePatriciaTrie};
use dichotomy_simnet::{CostModel, FaultPlan, NetworkConfig};
use dichotomy_systems::{SystemRegistry, SystemSpec};
use dichotomy_workload::WorkloadSpec;

use crate::driver::{run_workload, ArrivalSpec, DriverConfig};
use crate::experiments::{ExperimentReport, ProbeFailure, Row, RowSeries};
use crate::metrics::Metrics;

/// What one column reads off an executed probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Committed transactions per second of simulated time.
    ThroughputTps,
    /// Aborts as a percentage of finished transactions.
    AbortPercent,
    /// Aborts attributed to one reason, as a percentage of finished
    /// transactions.
    AbortSharePercent(AbortReason),
    /// Mean commit latency in milliseconds.
    LatencyMeanMs,
    /// 99th-percentile commit latency in milliseconds (the explorer's tail
    /// axis; order-statistic under `MetricsMode::Exact`, P² estimate under
    /// `MetricsMode::Streaming`).
    LatencyP99Ms,
    /// Mean latency of one named pipeline phase, in milliseconds.
    PhaseMeanMs(&'static str),
    /// Mean latency of one named pipeline phase, in microseconds.
    PhaseMeanUs(&'static str),
    /// State bytes (payload + index) per driven record.
    StateBytesPerRecord,
    /// History bytes (ledger blocks, WAL, old versions) per driven record.
    HistoryBytesPerRecord,
    /// Total storage bytes per driven record.
    TotalBytesPerRecord,
    /// A probe-computed named value (non-driving probes).
    Extra(&'static str),
}

/// One named column of a report row.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Column name, exactly as rendered.
    pub name: String,
    /// What to extract.
    pub metric: Metric,
}

impl ColumnSpec {
    /// A column reading `metric` under `name`.
    pub fn new(name: impl Into<String>, metric: Metric) -> Self {
        ColumnSpec {
            name: name.into(),
            metric,
        }
    }
}

/// One measurement a plan schedules. (`Drive` dominates the size — that is
/// fine, probes are plan data constructed once per cell, not a hot type.)
#[derive(Debug, Clone)]
#[allow(clippy::large_enum_variant)]
pub enum Probe {
    /// Build the system, build the workload, drive it, read metrics and the
    /// storage footprint.
    Drive {
        /// The system under test.
        system: SystemSpec,
        /// The workload description.
        workload: WorkloadSpec,
        /// The driver regime.
        driver: DriverConfig,
    },
    /// Populate the two authenticated indexes (MBT vs MPT) and report their
    /// per-record storage (Figure 13). Extras: `mbt_b_per_rec`,
    /// `mpt_b_per_rec`.
    AdrOverhead {
        /// Records inserted into each index.
        records: u64,
        /// Value size per record.
        record_size: usize,
    },
    /// The Section 5.6 forecast for a Table 2 profile. Extras: `band`,
    /// `forecast_tps`, `reported_tps`.
    Forecast {
        /// Profile name as it appears in `dichotomy_hybrid::all_systems`.
        profile: &'static str,
    },
}

impl Probe {
    /// Short label identifying the probe in progress lines and failures.
    pub fn label(&self) -> String {
        match self {
            Probe::Drive { system, .. } => system.label(),
            Probe::AdrOverhead { .. } => "adr-overhead".to_string(),
            Probe::Forecast { profile } => format!("forecast {profile}"),
        }
    }
}

/// A probe plus the columns it contributes to its row.
#[derive(Debug, Clone)]
pub struct PlannedRun {
    /// The measurement.
    pub probe: Probe,
    /// The columns read off it, in rendering order.
    pub columns: Vec<ColumnSpec>,
}

/// One labelled report row: the concatenated columns of its runs.
#[derive(Debug, Clone)]
pub struct PlannedRow {
    /// Row label, exactly as rendered.
    pub label: String,
    /// The measurements backing the row.
    pub runs: Vec<PlannedRun>,
}

/// A fully elaborated experiment: what [`run_plan`] executes.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// Report id ("Figure 4", ...).
    pub id: &'static str,
    /// Report title.
    pub title: &'static str,
    /// The measurement grid.
    pub rows: Vec<PlannedRow>,
    /// Pre-rendered text for qualitative experiments (Table 2); rendered
    /// verbatim instead of the row grid when present.
    pub text: Option<String>,
    /// Findings produced while expanding the plan (fault-schedule
    /// sanitization: `S001`/`S002`), with their plan locus attached. They
    /// are surfaced on stderr at expansion time and re-read by `repro lint`;
    /// reports and their JSON never include them, so stdout stays
    /// byte-identical whether or not anything was flagged.
    pub diagnostics: Vec<Diagnostic>,
}

impl ExperimentPlan {
    /// Number of probes the plan schedules.
    pub fn probe_count(&self) -> usize {
        self.rows.iter().map(|r| r.runs.len()).sum()
    }
}

/// The axis a [`Scenario`] varies — one knob, many points.
#[derive(Debug, Clone)]
pub enum Sweep {
    /// No sweep: one row per system.
    None,
    /// Replica count.
    Nodes(Vec<usize>),
    /// Zipfian skew θ.
    Theta(Vec<f64>),
    /// Operations per transaction; when `payload_bytes` is set the record
    /// size shrinks so the total transaction payload stays constant
    /// (Figure 10's axis).
    OpsPerTxn {
        /// The operation counts.
        counts: Vec<usize>,
        /// Total transaction payload to hold constant, if any.
        payload_bytes: Option<usize>,
    },
    /// Record (value) size in bytes.
    RecordSize(Vec<usize>),
    /// Shard count.
    Shards(Vec<u32>),
    /// Offered load in transactions per second.
    OfferedTps(Vec<f64>),
    /// Closed-loop client count (the driver's arrival spec must be
    /// [`ArrivalSpec::ClosedLoop`]).
    ClosedClients(Vec<u64>),
    /// Closed-loop mean think time in µs (the driver's arrival spec must be
    /// [`ArrivalSpec::ClosedLoop`]).
    ThinkTimeUs(Vec<u64>),
    /// Closed-loop outstanding-request cap (the driver's arrival spec must
    /// be [`ArrivalSpec::ClosedLoop`]).
    MaxOutstanding(Vec<u64>),
    /// Declarative fault schedules: one labelled [`FaultPlan`] per row, every
    /// system entry measured under every plan (the chaos grid's axis).
    Fault(Vec<(String, FaultPlan)>),
}

impl Sweep {
    /// Number of sweep points (0 for [`Sweep::None`]).
    pub fn len(&self) -> usize {
        match self {
            Sweep::None => 0,
            Sweep::Nodes(v) => v.len(),
            Sweep::Theta(v) => v.len(),
            Sweep::OpsPerTxn { counts, .. } => counts.len(),
            Sweep::RecordSize(v) => v.len(),
            Sweep::Shards(v) => v.len(),
            Sweep::OfferedTps(v) => v.len(),
            Sweep::ClosedClients(v) => v.len(),
            Sweep::ThinkTimeUs(v) => v.len(),
            Sweep::MaxOutstanding(v) => v.len(),
            Sweep::Fault(v) => v.len(),
        }
    }

    /// Whether there are no sweep points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Default row label for point `i`.
    fn label(&self, i: usize) -> String {
        match self {
            Sweep::None => String::new(),
            Sweep::Nodes(v) => format!("{} nodes", v[i]),
            Sweep::Theta(v) => format!("theta={:.1}", v[i]),
            Sweep::OpsPerTxn { counts, .. } => format!("{} ops/txn", counts[i]),
            Sweep::RecordSize(v) => format!("{} B", v[i]),
            Sweep::Shards(v) => format!("{} shards", v[i]),
            Sweep::OfferedTps(v) => format!("{} tps", v[i]),
            Sweep::ClosedClients(v) => format!("{} clients", v[i]),
            Sweep::ThinkTimeUs(v) => format!("think={} µs", v[i]),
            Sweep::MaxOutstanding(v) => format!("outstanding={}", v[i]),
            Sweep::Fault(v) => v[i].0.clone(),
        }
    }

    /// Apply point `i` to the components of one run.
    fn apply(
        &self,
        i: usize,
        spec: &mut SystemSpec,
        workload: &mut WorkloadSpec,
        driver: &mut DriverConfig,
    ) {
        match self {
            Sweep::None => {}
            Sweep::Nodes(v) => spec.nodes = Some(v[i]),
            Sweep::Theta(v) => *workload = workload.clone().with_theta(v[i]),
            Sweep::OpsPerTxn {
                counts,
                payload_bytes,
            } => {
                let ops = counts[i].max(1);
                *workload = workload.clone().with_ops_per_txn(ops);
                if let Some(total) = payload_bytes {
                    *workload = workload.clone().with_record_size(total / ops);
                }
            }
            Sweep::RecordSize(v) => *workload = workload.clone().with_record_size(v[i]),
            Sweep::Shards(v) => spec.shards = Some(v[i]),
            Sweep::OfferedTps(v) => {
                driver.offered_tps = v[i];
                // An explicit open-loop spec tracks the sweep too; other
                // specs keep their own arrival parameters.
                if let Some(ArrivalSpec::OpenLoop { offered_tps }) = &mut driver.arrival {
                    *offered_tps = v[i];
                }
            }
            Sweep::ClosedClients(v) => match &mut driver.arrival {
                Some(ArrivalSpec::ClosedLoop { clients, .. }) => *clients = v[i],
                other => {
                    panic!("Sweep::ClosedClients needs a ClosedLoop arrival spec, got {other:?}")
                }
            },
            Sweep::ThinkTimeUs(v) => match &mut driver.arrival {
                Some(ArrivalSpec::ClosedLoop { think_time_us, .. }) => *think_time_us = v[i],
                other => {
                    panic!("Sweep::ThinkTimeUs needs a ClosedLoop arrival spec, got {other:?}")
                }
            },
            Sweep::MaxOutstanding(v) => match &mut driver.arrival {
                Some(ArrivalSpec::ClosedLoop {
                    max_outstanding, ..
                }) => *max_outstanding = v[i],
                other => {
                    panic!("Sweep::MaxOutstanding needs a ClosedLoop arrival spec, got {other:?}")
                }
            },
            // The fault axis overrides whatever schedule the entry carried:
            // every system runs under the row's plan, baseline rows included.
            Sweep::Fault(v) => spec.faults = Some(v[i].1.clone()),
        }
    }
}

/// One system's role in a scenario: its spec and the columns its runs
/// contribute to every row.
#[derive(Debug, Clone)]
pub struct SystemEntry {
    /// The system under test.
    pub spec: SystemSpec,
    /// Columns read off each of its runs.
    pub columns: Vec<ColumnSpec>,
}

/// A declarative experiment: systems × workload × driver × sweep.
///
/// With a sweep, rows are sweep points and every system runs at every point;
/// without one, rows are the systems themselves. The scenario's `seed` is
/// threaded into every component, so two plans expanded from the same
/// scenario reproduce bit for bit and a different seed legitimately differs.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Report id.
    pub id: &'static str,
    /// Report title.
    pub title: &'static str,
    /// The systems under test, with their report columns.
    pub systems: Vec<SystemEntry>,
    /// The workload every run draws from.
    pub workload: WorkloadSpec,
    /// The driver regime.
    pub driver: DriverConfig,
    /// The varied axis.
    pub sweep: Sweep,
    /// Row label overrides (must match the number of rows when set).
    pub row_labels: Option<Vec<String>>,
    /// Fault schedule injected into every system that does not carry its
    /// own — crash/partition experiments as declarative plans.
    pub faults: Option<FaultPlan>,
    /// RNG seed threaded through systems, workload and driver.
    pub seed: u64,
}

impl Scenario {
    /// Expand into the fully elaborated grid.
    ///
    /// [`Sweep::None`] means "no axis": one row per system. A sweep *with an
    /// axis but zero points* (e.g. `Sweep::Theta(vec![])`) means "measure at
    /// zero points" and legitimately expands to a zero-row plan, which
    /// [`run_plan`] executes into an empty report instead of panicking.
    pub fn plan(&self) -> ExperimentPlan {
        let sweepless = matches!(self.sweep, Sweep::None);
        if let Some(labels) = &self.row_labels {
            let expected = if sweepless {
                self.systems.len()
            } else {
                self.sweep.len()
            };
            assert_eq!(
                labels.len(),
                expected,
                "scenario '{}': row_labels has {} entries but the plan has {} rows",
                self.id,
                labels.len(),
                expected
            );
        }
        let driver = self.driver.clone().with_seed(self.seed);
        let workload = self.workload.clone().with_seed(self.seed);
        let seeded_spec = |entry: &SystemEntry| {
            let mut spec = entry.spec.clone();
            if spec.seed.is_none() {
                spec.seed = Some(self.seed);
            }
            if spec.faults.is_none() {
                spec.faults = self.faults.clone();
            }
            spec
        };
        let rows = if sweepless {
            // One row per system.
            self.systems
                .iter()
                .enumerate()
                .map(|(i, entry)| PlannedRow {
                    label: self.row_label(i).unwrap_or_else(|| entry.spec.label()),
                    runs: vec![PlannedRun {
                        probe: Probe::Drive {
                            system: seeded_spec(entry),
                            workload: workload.clone(),
                            driver: driver.clone(),
                        },
                        columns: entry.columns.clone(),
                    }],
                })
                .collect()
        } else {
            // One row per sweep point, every system measured at each point.
            (0..self.sweep.len())
                .map(|i| PlannedRow {
                    label: self.row_label(i).unwrap_or_else(|| self.sweep.label(i)),
                    runs: self
                        .systems
                        .iter()
                        .map(|entry| {
                            let mut spec = seeded_spec(entry);
                            let mut wl = workload.clone();
                            let mut drv = driver.clone();
                            self.sweep.apply(i, &mut spec, &mut wl, &mut drv);
                            PlannedRun {
                                probe: Probe::Drive {
                                    system: spec,
                                    workload: wl,
                                    driver: drv,
                                },
                                columns: entry.columns.clone(),
                            }
                        })
                        .collect(),
                })
                .collect()
        };
        let mut plan = ExperimentPlan {
            id: self.id,
            title: self.title,
            rows,
            text: None,
            diagnostics: Vec::new(),
        };
        sanitize_fault_plans(&mut plan);
        plan
    }

    fn row_label(&self, i: usize) -> Option<String> {
        self.row_labels.as_ref().map(|labels| labels[i].clone())
    }
}

/// The arrival horizon (µs) of one driving probe, when it is computable up
/// front: how long the driver keeps issuing arrivals. Closed loops pace on
/// measured latency, so their span is unknowable at expansion time (`None`
/// skips the horizon check). Public so the plan linter can compare fault
/// schedules and window widths against the same horizon the sanitizer uses.
pub fn arrival_horizon_us(driver: &DriverConfig) -> Option<u64> {
    let open_loop_span = |offered_tps: f64| {
        (offered_tps > 0.0).then(|| (driver.transactions as f64 / offered_tps * 1e6).ceil() as u64)
    };
    match &driver.arrival {
        None => open_loop_span(driver.offered_tps),
        Some(ArrivalSpec::OpenLoop { offered_tps }) => open_loop_span(*offered_tps),
        Some(ArrivalSpec::Phased { phases }) => Some(phases.iter().map(|(d, _)| *d).sum()),
        // Closed loops (and populations mixing them in) pace on measured
        // latency; their span is not knowable at expansion time.
        Some(ArrivalSpec::ClosedLoop { .. }) | Some(ArrivalSpec::Mixed { .. }) => None,
    }
}

/// Sanitize every probe's fault schedule at plan-expansion time (a chaos
/// satellite): overlapping same-node crash windows merge into one (`S002`),
/// and faults scheduled at/after the probe's arrival horizon — they could
/// never dent the arrival stream — are dropped (`S001`). Each adjustment is
/// recorded as a structured [`Diagnostic`] with its plan locus on
/// `plan.diagnostics` (where `repro lint` re-reads it) and rendered on
/// stderr; stdout (the report and its JSON) stays byte-identical.
fn sanitize_fault_plans(plan: &mut ExperimentPlan) {
    let mut diags = Vec::new();
    for row in &mut plan.rows {
        for run in &mut row.runs {
            let Probe::Drive { system, driver, .. } = &mut run.probe else {
                continue;
            };
            let Some(faults) = &system.faults else {
                continue;
            };
            if faults.is_empty() {
                continue;
            }
            let (sanitized, found) = faults.validate(arrival_horizon_us(driver));
            for diag in found {
                let diag = diag.at_plan(plan.id, row.label.clone(), system.label());
                eprintln!("warning: {}", diag.render());
                diags.push(diag);
            }
            system.faults = Some(sanitized);
        }
    }
    plan.diagnostics.extend(diags);
}

/// Everything a probe produced, before column extraction.
///
/// This is the unit of deduplication and caching: two probes with the same
/// [`probe_key_bytes`] share one `ProbeResult`, and a persistent
/// [`ProbeCache`] round-trips it through the in-repo binary codec
/// ([`Encode`]/[`Decode`]). Column extraction ([`ColumnSpec`]) happens per
/// report slot *after* the result exists, so probes that differ only in the
/// columns they read still share one execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeResult {
    /// The run's aggregate metrics (driving probes; default otherwise).
    pub metrics: Metrics,
    /// The system's storage footprint after the run.
    pub footprint: StorageBreakdown,
    /// Records/transactions driven (denominator for per-record metrics).
    pub records: u64,
    /// Probe-computed named values ([`Metric::Extra`]), in insertion order.
    pub extras: Vec<(String, f64)>,
    /// Windowed time series (driving probes only), with the probe's label.
    pub series: Option<RowSeries>,
}

impl Encode for ProbeResult {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.metrics.encode_into(out);
        self.footprint.encode_into(out);
        self.records.encode_into(out);
        self.extras.encode_into(out);
        self.series.encode_into(out);
    }
}

impl Decode for ProbeResult {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(ProbeResult {
            metrics: Metrics::decode_from(input)?,
            footprint: StorageBreakdown::decode_from(input)?,
            records: u64::decode_from(input)?,
            extras: Vec::decode_from(input)?,
            series: Option::decode_from(input)?,
        })
    }
}

/// The canonical content key of a probe: a tag byte plus the binary
/// encoding of every input that determines the probe's result — the full
/// [`SystemSpec`] (nodes, shards, consensus, block cutting, network, cost
/// model, fault schedule, seed, label), the [`WorkloadSpec`] knobs, and the
/// [`DriverConfig`] including its arrival spec and metrics mode. Two probes
/// with equal key bytes are the same measurement by construction; nothing
/// that can change the report is left out.
pub fn probe_key_bytes(probe: &Probe) -> Vec<u8> {
    let mut out = Vec::new();
    match probe {
        Probe::Drive {
            system,
            workload,
            driver,
        } => {
            out.push(0);
            system.encode_into(&mut out);
            workload.encode_into(&mut out);
            driver.encode_into(&mut out);
        }
        Probe::AdrOverhead {
            records,
            record_size,
        } => {
            out.push(1);
            records.encode_into(&mut out);
            (*record_size as u64).encode_into(&mut out);
        }
        Probe::Forecast { profile } => {
            out.push(2);
            profile.encode_into(&mut out);
        }
    }
    out
}

/// 64-bit FNV-1a over a byte string (names cache entries; collisions are
/// guarded by comparing the full key bytes, never by trusting the hash).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A persistent content-addressed store of probe results, keyed by the full
/// [`probe_key_bytes`]. Implementations must only return a result for an
/// exactly matching key (hash collisions, corruption and stale formats all
/// read as a miss, never as a wrong answer). `store` failures are silent —
/// a cache that cannot write still measures correctly.
pub trait ProbeCache: Sync {
    /// Look up the result of a previously executed probe.
    fn load(&self, key: &[u8]) -> Option<ProbeResult>;
    /// Record the result of a just-executed probe.
    fn store(&self, key: &[u8], result: &ProbeResult);
}

/// The scheduler's predicted relative cost of a probe (arbitrary wall-like
/// units: modeled microseconds of work, scaled). Driving probes use the
/// Section 5.6 forecast model — the system's taxonomy point priced by
/// [`forecast_txn_cost_us`] — times the transaction count and replica count;
/// when the forecast cannot price a point the fallback is the
/// `transactions × nodes` heuristic. Non-driving probes are near-free
/// constants. Used only to order the work queue longest-first; never part
/// of the report.
pub fn predicted_probe_cost(probe: &Probe) -> f64 {
    match probe {
        Probe::Drive {
            system,
            workload,
            driver,
        } => {
            let nodes = system.nodes.unwrap_or(4).max(1);
            let txns = driver.transactions.max(1) as f64;
            let taxonomy = system.taxonomy();
            let (record_size, ops) = match workload {
                WorkloadSpec::Ycsb(c) => (c.record_size, c.ops_per_txn.max(1)),
                // Smallbank procedures touch two accounts on average.
                WorkloadSpec::Smallbank(c) => (c.record_size, 2),
            };
            let spec = HybridSpec {
                name: system.label(),
                replication: taxonomy.replication,
                protocol: taxonomy.protocol,
                concurrency: taxonomy.concurrency,
                nodes,
                txn_bytes: (record_size * ops).max(1),
                batch_size: system.block_txns.unwrap_or(500).max(1),
            };
            let network = system
                .network
                .clone()
                .unwrap_or_else(NetworkConfig::lan_1gbps);
            let costs = system.costs.clone().unwrap_or_else(CostModel::calibrated);
            let per_txn_us = forecast_txn_cost_us(&spec, &network, &costs);
            let cost = txns * nodes as f64 * per_txn_us;
            if cost.is_finite() && cost > 0.0 {
                cost
            } else {
                txns * nodes as f64
            }
        }
        Probe::AdrOverhead { records, .. } => (*records).max(1) as f64,
        Probe::Forecast { .. } => 1.0,
    }
}

/// How [`run_plan_with`] executes a plan's probes.
///
/// Every probe is an isolated engine + system pair, so probes run on a
/// worker pool: results are reassembled in plan order and the report is
/// byte-identical to sequential execution for the same seed, whatever the
/// worker count.
#[derive(Clone, Copy, Default)]
pub struct ExecOptions<'a> {
    /// Worker threads. `0` (the default) resolves the `DICHOTOMY_JOBS`
    /// environment variable, falling back to
    /// [`std::thread::available_parallelism`]; `1` runs probes inline with
    /// no pool.
    pub jobs: usize,
    /// Invoked once per finished probe, in completion order, from the thread
    /// that called [`run_plan_with`] — live per-probe status for a CLI.
    pub progress: Option<&'a (dyn Fn(&ProbeStatus) + Sync)>,
    /// Stop scheduling new probes once one fails: probes already in flight
    /// finish, everything still queued reports a labelled "skipped" failure
    /// with NaN columns instead of running. With more than one worker the
    /// skipped set depends on timing; `jobs = 1` skips everything after the
    /// first failure deterministically.
    pub fail_fast: bool,
    /// Persistent result cache consulted before executing each distinct
    /// probe and fed after each successful execution. `None` (the default)
    /// measures everything; in-run deduplication applies either way.
    pub cache: Option<&'a dyn ProbeCache>,
}

impl ExecOptions<'_> {
    /// Options with an explicit worker count and no progress callback.
    pub fn with_jobs(jobs: usize) -> Self {
        ExecOptions {
            jobs,
            progress: None,
            fail_fast: false,
            cache: None,
        }
    }

    /// The worker count this configuration resolves to.
    pub fn effective_jobs(&self) -> usize {
        if self.jobs > 0 {
            return self.jobs;
        }
        std::env::var("DICHOTOMY_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&j| j > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    }
}

/// Live status of one finished probe, delivered to [`ExecOptions::progress`].
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeStatus {
    /// Index of the plan the probe belongs to in the executed batch (always
    /// 0 for single-plan runs; [`run_plans_with`] batches share one pool
    /// across experiments).
    pub plan: usize,
    /// Plan-order index of the probe within its plan (stable across worker
    /// counts).
    pub index: usize,
    /// Total probes across the whole batch.
    pub total: usize,
    /// Probes finished so far across the batch, including this one
    /// (completion order).
    pub done: usize,
    /// Label of the row the probe contributes to.
    pub row: String,
    /// The probe's label.
    pub probe: String,
    /// The panic message, if the probe failed.
    pub error: Option<String>,
    /// Whether the result came from the persistent [`ProbeCache`].
    pub cached: bool,
    /// Whether this probe shared another identical probe's execution
    /// (in-run deduplication) instead of running itself.
    pub deduped: bool,
}

/// Best-effort text of a panic payload: `&str` and `String` payloads carry
/// their message through; anything else keeps a fixed marker (the caller
/// supplies the attribution — probe label, row, experiment id).
pub fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panicked (non-string payload)".to_string()
    }
}

// Plans cross thread boundaries wholesale (workers borrow them), so
// everything a plan carries must be Send + Sync. Compile-time audit; the
// system *models* themselves are exempt — each worker builds its own from
// the spec and never ships it anywhere.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<ExperimentPlan>();
    _assert_send_sync::<Probe>();
    _assert_send_sync::<SystemRegistry>();
};

/// Execute a plan with the built-in system registry and default execution
/// options (worker count from `DICHOTOMY_JOBS` / available parallelism).
pub fn run_plan(plan: &ExperimentPlan) -> ExperimentReport {
    run_plan_with(
        plan,
        &SystemRegistry::with_builtins(),
        &ExecOptions::default(),
    )
}

/// One probe's result, before reassembly into rows.
struct ProbeOutcome {
    values: Vec<(String, f64)>,
    series: Option<RowSeries>,
    error: Option<String>,
    /// Wall-clock milliseconds spent executing the probe (0 for skipped
    /// probes). Feeds the per-experiment bench trajectory; never part of the
    /// deterministic report itself.
    wall_ms: f64,
}

/// A probe flattened out of the row grid, with the labels that attribute it.
struct FlatProbe<'p> {
    /// Index of the owning plan in the executed batch.
    plan: usize,
    /// Plan-order probe index within that plan.
    index: usize,
    run: &'p PlannedRun,
    row_label: &'p str,
    probe_label: String,
}

/// Predicted-vs-actual wall for one executed probe: the forecast
/// calibration datum the bench document records per experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeCalibration {
    /// The probe's label.
    pub probe: String,
    /// The scheduler's [`predicted_probe_cost`] (modeled µs of work).
    pub predicted: f64,
    /// Measured wall-clock milliseconds of the actual execution.
    pub wall_ms: f64,
}

/// One plan's result from a (possibly batched) execution.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanOutcome {
    /// The deterministic report.
    pub report: ExperimentReport,
    /// Summed wall-clock milliseconds the pool's workers spent inside this
    /// plan's probes (probes of different plans overlap on a shared pool, so
    /// this is worker time, not elapsed time).
    pub probe_wall_ms: f64,
    /// Probes the plan scheduled.
    pub probes: usize,
    /// Distinct probe keys whose representative slot lives in this plan
    /// (summed over a batch this counts every executed-or-cached key once).
    pub distinct_probes: usize,
    /// Distinct keys answered from the persistent [`ProbeCache`].
    pub cache_hits: usize,
    /// Wall-clock milliseconds in-run deduplication saved this plan: the
    /// representative's measured wall, once per duplicate slot.
    pub dedup_saved_ms: f64,
    /// Predicted-vs-actual wall per actually executed probe (cache hits and
    /// failures carry no calibration signal), in completion order.
    pub calibration: Vec<ProbeCalibration>,
}

/// Execute a plan, building systems through `registry`, on a worker pool of
/// `options.effective_jobs()` threads (a channel-fed queue of probe indexes;
/// rows are reassembled in plan order, so output does not depend on the
/// worker count).
///
/// Each probe runs under its own panic boundary: a panicking probe — unknown
/// profile, unregistered builder, a model bug — reports NaN for its columns
/// plus a labelled [`ProbeFailure`], and every other probe still completes.
pub fn run_plan_with(
    plan: &ExperimentPlan,
    registry: &SystemRegistry,
    options: &ExecOptions,
) -> ExperimentReport {
    run_plans_with(&[plan], registry, options)
        .pop()
        .expect("one plan in, one report out")
        .report
}

/// Message given to every probe slot skipped by fail-fast queue draining.
const SKIPPED_MESSAGE: &str = "skipped: an earlier probe failed (fail-fast)";

/// Longest-predicted-first (LPT) schedule: indexes of `costs` sorted by
/// descending cost, ties broken by position. On a greedy worker pool this
/// keeps the expensive stragglers off the queue's tail, shrinking the
/// makespan versus arrival order (classic LPT list scheduling).
pub fn lpt_order(costs: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[b]
            .partial_cmp(&costs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    order
}

/// A unit of actual work: one distinct probe key, the flat slots that share
/// its result (first slot is the representative that defines it), and the
/// scheduler's predicted cost.
struct WorkItem {
    key: Vec<u8>,
    slots: Vec<usize>,
    cost: f64,
}

/// What one work item produced, fanned out to every slot by the collector.
struct ItemOutcome {
    result: Result<ProbeResult, String>,
    wall_ms: f64,
    cache_hit: bool,
}

/// Per-plan throughput-layer accounting, accumulated by the collector.
#[derive(Default)]
struct PlanAccounting {
    distinct: usize,
    cache_hits: usize,
    dedup_saved_ms: f64,
    calibration: Vec<ProbeCalibration>,
}

/// Execute several plans on **one shared worker pool**: the probes of every
/// plan go into a single queue, so workers stay busy across experiment
/// boundaries instead of draining at each experiment's tail (`repro all`
/// goes through this). Reports come back in plan order and are byte-identical
/// to running each plan alone with the same seed, whatever the worker count.
///
/// The queue is **deduplicated and scheduled** before anything runs:
///
/// 1. every probe is keyed by [`probe_key_bytes`]; slots with equal keys
///    collapse into one [`WorkItem`] executed once, its [`ProbeResult`]
///    fanned out to every slot (column extraction stays per slot, so the
///    reports are byte-identical to executing each slot separately);
/// 2. with a cache configured ([`ExecOptions::cache`]), each distinct item
///    is answered from the cache when possible and stored after executing;
/// 3. with more than one worker the item queue is ordered
///    longest-predicted-first ([`predicted_probe_cost`]) to shrink the
///    pool's makespan; one worker keeps first-occurrence order so
///    fail-fast skips stay deterministic in plan order.
pub fn run_plans_with(
    plans: &[&ExperimentPlan],
    registry: &SystemRegistry,
    options: &ExecOptions,
) -> Vec<PlanOutcome> {
    let flat: Vec<FlatProbe> = plans
        .iter()
        .enumerate()
        .flat_map(|(plan_idx, plan)| {
            plan.rows
                .iter()
                .flat_map(|row| row.runs.iter().map(move |run| (run, row.label.as_str())))
                .enumerate()
                .map(move |(index, (run, row_label))| FlatProbe {
                    plan: plan_idx,
                    index,
                    run,
                    row_label,
                    probe_label: run.probe.label(),
                })
        })
        .collect();
    let total = flat.len();

    // Collapse identical probes into work items. Items are keyed by the
    // canonical content hash; the full key bytes break (hypothetical)
    // hash collisions, so equal items are equal measurements.
    let mut items: Vec<WorkItem> = Vec::new();
    let mut by_hash: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for (flat_index, probe) in flat.iter().enumerate() {
        let key = probe_key_bytes(&probe.run.probe);
        let candidates = by_hash.entry(fnv1a_64(&key)).or_default();
        if let Some(&existing) = candidates.iter().find(|&&i| items[i].key == key) {
            items[existing].slots.push(flat_index);
        } else {
            candidates.push(items.len());
            items.push(WorkItem {
                key,
                slots: vec![flat_index],
                cost: 0.0,
            });
        }
    }
    for item in &mut items {
        item.cost = predicted_probe_cost(&flat[item.slots[0]].run.probe);
    }
    let distinct = items.len();
    let jobs = options.effective_jobs().min(distinct.max(1));

    // Longest-predicted-first ordering (ties broken by first occurrence)
    // keeps the big probes off the pool's tail; a single worker runs every
    // item anyway, so it keeps plan order for deterministic fail-fast.
    let order: Vec<usize> = if jobs > 1 {
        lpt_order(&items.iter().map(|i| i.cost).collect::<Vec<_>>())
    } else {
        (0..distinct).collect()
    };

    let abort = std::sync::atomic::AtomicBool::new(false);
    let execute_item = |item: &WorkItem| -> ItemOutcome {
        if options.fail_fast && abort.load(std::sync::atomic::Ordering::Relaxed) {
            return ItemOutcome {
                result: Err(SKIPPED_MESSAGE.to_string()),
                wall_ms: 0.0,
                cache_hit: false,
            };
        }
        if let Some(cache) = options.cache {
            if let Some(result) = cache.load(&item.key) {
                return ItemOutcome {
                    result: Ok(result),
                    wall_ms: 0.0,
                    cache_hit: true,
                };
            }
        }
        // lint: allow(D004) -- wall-clock probe timing for the bench trajectory; never enters a report or a cache key
        let started = std::time::Instant::now();
        let rep = &flat[item.slots[0]];
        let result = match catch_unwind(AssertUnwindSafe(|| observe(&rep.run.probe, registry))) {
            Ok(result) => Ok(result),
            Err(payload) => Err(panic_text(payload.as_ref())),
        };
        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        match &result {
            Ok(result) => {
                if let Some(cache) = options.cache {
                    cache.store(&item.key, result);
                }
            }
            Err(_) => abort.store(true, std::sync::atomic::Ordering::Relaxed),
        }
        ItemOutcome {
            result,
            wall_ms,
            cache_hit: false,
        }
    };

    // The collector: fan one item's outcome out to every slot that shares
    // it. Column extraction is per slot (slots may read different columns
    // off the same result); the representative slot carries the measured
    // wall, duplicate slots carry 0 and credit the saving to their plan.
    let absorb = |item_index: usize,
                  outcome: ItemOutcome,
                  outcomes: &mut [Option<ProbeOutcome>],
                  accounting: &mut [PlanAccounting],
                  done: &mut usize| {
        let item = &items[item_index];
        let rep = &flat[item.slots[0]];
        accounting[rep.plan].distinct += 1;
        if outcome.cache_hit {
            accounting[rep.plan].cache_hits += 1;
        } else if outcome.result.is_ok() {
            accounting[rep.plan].calibration.push(ProbeCalibration {
                probe: rep.probe_label.clone(),
                predicted: item.cost,
                wall_ms: outcome.wall_ms,
            });
        }
        for (pos, &flat_index) in item.slots.iter().enumerate() {
            let probe = &flat[flat_index];
            if pos > 0 {
                accounting[probe.plan].dedup_saved_ms += outcome.wall_ms;
            }
            let slot = match &outcome.result {
                Ok(result) => ProbeOutcome {
                    values: probe
                        .run
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), extract(result, &c.metric)))
                        .collect(),
                    series: result.series.clone(),
                    error: None,
                    wall_ms: if pos == 0 { outcome.wall_ms } else { 0.0 },
                },
                // A failed (or fail-fast-skipped) item keeps every slot's
                // column shape: NaN values (JSON null) plus the message.
                Err(message) => ProbeOutcome {
                    values: probe
                        .run
                        .columns
                        .iter()
                        .map(|c| (c.name.clone(), f64::NAN))
                        .collect(),
                    series: None,
                    error: Some(message.clone()),
                    wall_ms: if pos == 0 { outcome.wall_ms } else { 0.0 },
                },
            };
            *done += 1;
            if let Some(progress) = options.progress {
                progress(&ProbeStatus {
                    plan: probe.plan,
                    index: probe.index,
                    total,
                    done: *done,
                    row: probe.row_label.to_string(),
                    probe: probe.probe_label.clone(),
                    error: slot.error.clone(),
                    cached: outcome.cache_hit,
                    deduped: pos > 0,
                });
            }
            outcomes[flat_index] = Some(slot);
        }
    };

    let mut done = 0usize;
    let mut outcomes: Vec<Option<ProbeOutcome>> = (0..total).map(|_| None).collect();
    let mut accounting: Vec<PlanAccounting> =
        plans.iter().map(|_| PlanAccounting::default()).collect();
    if jobs <= 1 {
        for &item_index in &order {
            let outcome = execute_item(&items[item_index]);
            absorb(
                item_index,
                outcome,
                &mut outcomes,
                &mut accounting,
                &mut done,
            );
        }
    } else {
        // The work queue: item indexes in scheduled order, shared through a
        // mutex so idle workers pull the next item as they finish. Results
        // come back over a second channel; the collector fans them out and
        // runs the progress callback.
        let (job_tx, job_rx) = mpsc::channel::<usize>();
        for &item_index in &order {
            let _ = job_tx.send(item_index);
        }
        drop(job_tx);
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (result_tx, result_rx) = mpsc::channel::<(usize, ItemOutcome)>();
        let items_ref = &items;
        let execute_ref = &execute_item;
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                let job_rx = Arc::clone(&job_rx);
                let result_tx = result_tx.clone();
                scope.spawn(move || loop {
                    // Probes unwind-catch their panics, so the lock can
                    // only be poisoned by a bug in this loop itself; a
                    // worker that finds it poisoned stops cleanly rather
                    // than panicking outside the catch_unwind boundary
                    // (which would abort the whole scope).
                    let Ok(queue) = job_rx.lock() else { break };
                    let next = queue.recv();
                    drop(queue);
                    let Ok(item_index) = next else { break };
                    let outcome = execute_ref(&items_ref[item_index]);
                    if result_tx.send((item_index, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(result_tx);
            while let Ok((item_index, outcome)) = result_rx.recv() {
                absorb(
                    item_index,
                    outcome,
                    &mut outcomes,
                    &mut accounting,
                    &mut done,
                );
            }
        });
    }

    let mut outcomes = outcomes.into_iter();
    plans
        .iter()
        .zip(accounting)
        .map(|(plan, accounting)| {
            let mut failures = Vec::new();
            let mut probe_wall_ms = 0.0;
            let mut index = 0usize;
            let rows = plan
                .rows
                .iter()
                .map(|row| {
                    let mut values = Vec::new();
                    let mut series = Vec::new();
                    for run in &row.runs {
                        let outcome = outcomes
                            .next()
                            .flatten()
                            .expect("every scheduled probe reports an outcome");
                        values.extend(outcome.values);
                        series.extend(outcome.series);
                        probe_wall_ms += outcome.wall_ms;
                        if let Some(message) = outcome.error {
                            failures.push(ProbeFailure {
                                row: row.label.clone(),
                                probe: run.probe.label(),
                                index,
                                message,
                            });
                        }
                        index += 1;
                    }
                    Row {
                        label: row.label.clone(),
                        values,
                        series,
                    }
                })
                .collect();
            PlanOutcome {
                report: ExperimentReport {
                    id: plan.id,
                    title: plan.title,
                    rows,
                    failures,
                    text: plan.text.clone(),
                },
                probe_wall_ms,
                probes: plan.probe_count(),
                distinct_probes: accounting.distinct,
                cache_hits: accounting.cache_hits,
                dedup_saved_ms: accounting.dedup_saved_ms,
                calibration: accounting.calibration,
            }
        })
        .collect()
}

/// Run one probe to its [`ProbeResult`] (panics propagate to the caller's
/// unwind boundary).
fn observe(probe: &Probe, registry: &SystemRegistry) -> ProbeResult {
    match probe {
        Probe::Drive {
            system,
            workload,
            driver,
        } => {
            let mut sys = registry
                .build(system)
                .unwrap_or_else(|e| panic!("cannot build {}: {e}", system.label()));
            let mut wl = workload.build();
            let stats = run_workload(sys.as_mut(), wl.as_mut(), driver);
            // A violated invariant is a model bug, not a measurement: panic
            // inside the probe boundary so it surfaces as a labelled
            // ProbeFailure and the rest of the grid still completes.
            if let Some(v) = stats.oracles.violations().next() {
                panic!(
                    "oracle '{}' violated: {}",
                    v.name,
                    v.violation.as_deref().unwrap_or("unspecified")
                );
            }
            ProbeResult {
                metrics: stats.metrics,
                footprint: sys.footprint(),
                records: driver.transactions,
                extras: Vec::new(),
                series: Some(RowSeries {
                    name: system.label(),
                    events_clamped: stats.events_clamped,
                    oracles: stats.oracles,
                    series: stats.series,
                }),
            }
        }
        Probe::AdrOverhead {
            records,
            record_size,
        } => {
            let mut mbt = MerkleBucketTree::fabric_default();
            let mut mpt = MerklePatriciaTrie::new();
            for i in 0..*records {
                // 16-byte keys, as in the paper's setup.
                let key = Key::new(Hash::of(&i.to_be_bytes()).0[..16].to_vec());
                let value = Value::filler(*record_size);
                mbt.put(&key, &value);
                mpt.insert(&key, &value);
            }
            let per_rec = |fp: StorageBreakdown| fp.total() as f64 / (*records).max(1) as f64;
            let extras = vec![
                (
                    "mbt_b_per_rec".to_string(),
                    *record_size as f64 + per_rec(mbt.footprint()),
                ),
                ("mpt_b_per_rec".to_string(), per_rec(mpt.footprint())),
            ];
            ProbeResult {
                metrics: Metrics::default(),
                footprint: StorageBreakdown::default(),
                records: *records,
                extras,
                series: None,
            }
        }
        Probe::Forecast { profile } => {
            let profiles = all_systems();
            let p = profiles
                .iter()
                .find(|s| s.name == *profile)
                .unwrap_or_else(|| panic!("unknown Table 2 profile '{profile}'"));
            let spec = HybridSpec::from_profile(p);
            let forecast =
                forecast_throughput(&spec, &NetworkConfig::lan_1gbps(), &CostModel::calibrated());
            let extras = vec![
                ("band".to_string(), spec.band() as u8 as f64),
                ("forecast_tps".to_string(), forecast),
                (
                    "reported_tps".to_string(),
                    p.reported_tps.unwrap_or(f64::NAN),
                ),
            ];
            ProbeResult {
                metrics: Metrics::default(),
                footprint: StorageBreakdown::default(),
                records: 0,
                extras,
                series: None,
            }
        }
    }
}

fn extract(obs: &ProbeResult, metric: &Metric) -> f64 {
    let phase = |name: &str| obs.metrics.phase_means_us.get(name).copied().unwrap_or(0.0);
    let records = obs.records.max(1) as f64;
    match metric {
        Metric::ThroughputTps => obs.metrics.throughput_tps,
        Metric::AbortPercent => obs.metrics.abort_rate_percent(),
        Metric::AbortSharePercent(reason) => obs.metrics.abort_share_percent(*reason),
        Metric::LatencyMeanMs => obs.metrics.latency.mean_us / 1000.0,
        Metric::LatencyP99Ms => obs.metrics.latency.p99_us as f64 / 1000.0,
        Metric::PhaseMeanMs(name) => phase(name) / 1000.0,
        Metric::PhaseMeanUs(name) => phase(name),
        Metric::StateBytesPerRecord => {
            (obs.footprint.payload_bytes + obs.footprint.index_bytes) as f64 / records
        }
        Metric::HistoryBytesPerRecord => obs.footprint.history_bytes as f64 / records,
        Metric::TotalBytesPerRecord => obs.footprint.total() as f64 / records,
        Metric::Extra(key) => obs
            .extras
            .iter()
            .find(|(name, _)| name == key)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_systems::SystemKind;
    use dichotomy_workload::YcsbMix;

    fn tiny_scenario(seed: u64) -> Scenario {
        Scenario {
            id: "T",
            title: "tiny",
            systems: vec![SystemEntry {
                spec: SystemSpec::new(SystemKind::Etcd),
                columns: vec![
                    ColumnSpec::new("tps", Metric::ThroughputTps),
                    ColumnSpec::new("abort_%", Metric::AbortPercent),
                ],
            }],
            workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(500),
            driver: DriverConfig::saturating(150),
            sweep: Sweep::None,
            row_labels: None,
            faults: None,
            seed,
        }
    }

    #[test]
    fn sweepless_scenarios_have_one_row_per_system() {
        let report = run_plan(&tiny_scenario(1).plan());
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].label, "etcd");
        assert!(report.value("etcd", "tps").unwrap() > 0.0);
        assert_eq!(report.value("etcd", "abort_%").unwrap(), 0.0);
    }

    #[test]
    fn sweeps_expand_to_one_row_per_point() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::Theta(vec![0.0, 0.5, 1.0]);
        let plan = scenario.plan();
        assert_eq!(plan.rows.len(), 3);
        assert_eq!(plan.rows[1].label, "theta=0.5");
        assert_eq!(plan.probe_count(), 3);
        let report = run_plan(&plan);
        assert!(report.value("theta=1.0", "tps").unwrap() > 0.0);
    }

    #[test]
    fn row_label_overrides_win() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::Nodes(vec![3, 5]);
        scenario.row_labels = Some(vec!["small".into(), "large".into()]);
        let plan = scenario.plan();
        assert_eq!(plan.rows[0].label, "small");
        assert_eq!(plan.rows[1].label, "large");
    }

    #[test]
    fn node_sweeps_reach_the_built_system() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::Nodes(vec![3, 7]);
        let plan = scenario.plan();
        match &plan.rows[1].runs[0].probe {
            Probe::Drive { system, .. } => assert_eq!(system.nodes, Some(7)),
            _ => panic!("expected a drive probe"),
        }
    }

    #[test]
    fn ops_sweep_keeps_total_payload_constant() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::OpsPerTxn {
            counts: vec![1, 4],
            payload_bytes: Some(1000),
        };
        let plan = scenario.plan();
        match &plan.rows[1].runs[0].probe {
            Probe::Drive { workload, .. } => match workload {
                WorkloadSpec::Ycsb(c) => {
                    assert_eq!(c.ops_per_txn, 4);
                    assert_eq!(c.record_size, 250);
                }
                _ => panic!("expected YCSB"),
            },
            _ => panic!("expected a drive probe"),
        }
    }

    #[test]
    fn same_seed_reproduces_and_seeds_thread_through() {
        let a = run_plan(&tiny_scenario(42).plan());
        let b = run_plan(&tiny_scenario(42).plan());
        assert_eq!(a.rows[0].values, b.rows[0].values);
        match &tiny_scenario(42).plan().rows[0].runs[0].probe {
            Probe::Drive {
                system,
                workload,
                driver,
            } => {
                assert_eq!(system.seed, Some(42));
                assert_eq!(workload.seed(), 42);
                assert_eq!(driver.seed, 42);
            }
            _ => panic!("expected a drive probe"),
        }
    }

    #[test]
    fn forecast_and_adr_probes_fill_extras() {
        let plan = ExperimentPlan {
            id: "X",
            title: "probes",
            rows: vec![
                PlannedRow {
                    label: "Veritas".into(),
                    runs: vec![PlannedRun {
                        probe: Probe::Forecast { profile: "Veritas" },
                        columns: vec![
                            ColumnSpec::new("forecast_tps", Metric::Extra("forecast_tps")),
                            ColumnSpec::new("reported_tps", Metric::Extra("reported_tps")),
                        ],
                    }],
                },
                PlannedRow {
                    label: "100 B".into(),
                    runs: vec![PlannedRun {
                        probe: Probe::AdrOverhead {
                            records: 200,
                            record_size: 100,
                        },
                        columns: vec![
                            ColumnSpec::new("MBT_B/rec", Metric::Extra("mbt_b_per_rec")),
                            ColumnSpec::new("MPT_B/rec", Metric::Extra("mpt_b_per_rec")),
                        ],
                    }],
                },
            ],
            text: None,
            diagnostics: Vec::new(),
        };
        let report = run_plan(&plan);
        assert!(report.value("Veritas", "forecast_tps").unwrap() > 0.0);
        assert_eq!(report.value("Veritas", "reported_tps").unwrap(), 29_000.0);
        let mbt = report.value("100 B", "MBT_B/rec").unwrap();
        let mpt = report.value("100 B", "MPT_B/rec").unwrap();
        assert!(mpt > mbt);
    }

    fn kind_scenario(kind: SystemKind) -> Scenario {
        Scenario {
            id: "P",
            title: "parallel determinism",
            systems: vec![SystemEntry {
                spec: SystemSpec::new(kind),
                columns: vec![
                    ColumnSpec::new("tps", Metric::ThroughputTps),
                    ColumnSpec::new("abort_%", Metric::AbortPercent),
                    ColumnSpec::new("lat_ms", Metric::LatencyMeanMs),
                ],
            }],
            workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly).with_records(500),
            driver: DriverConfig::saturating(120),
            sweep: Sweep::Theta(vec![0.0, 0.8]),
            row_labels: None,
            faults: None,
            seed: 7,
        }
    }

    #[test]
    fn parallel_execution_matches_sequential_for_every_kind_and_fault01() {
        // The acceptance bar for the worker pool: for a fixed seed, jobs=1
        // and jobs=8 produce identical reports — values, windowed series and
        // the per-probe clamp counters (all covered by ExperimentReport's
        // PartialEq) — across one experiment per system kind plus the fault
        // scenario.
        let registry = SystemRegistry::with_builtins();
        let mut plans: Vec<ExperimentPlan> = SystemKind::ALL
            .iter()
            .map(|&kind| kind_scenario(kind).plan())
            .collect();
        plans.push(crate::experiments::fault01_plan(120, 7));
        for plan in &plans {
            let sequential = run_plan_with(plan, &registry, &ExecOptions::with_jobs(1));
            let parallel = run_plan_with(plan, &registry, &ExecOptions::with_jobs(8));
            assert_eq!(sequential, parallel, "{}", plan.id);
            assert!(sequential.failures.is_empty(), "{}", plan.id);
            for row in &sequential.rows {
                for s in &row.series {
                    assert_eq!(s.events_clamped, 0, "{} {}", plan.id, row.label);
                }
            }
        }
    }

    #[test]
    fn a_panicking_probe_is_isolated_and_labelled() {
        fn bomb(_spec: &SystemSpec) -> Box<dyn dichotomy_systems::TransactionalSystem> {
            // A non-string payload: the failure must still be attributable.
            std::panic::panic_any(42u32)
        }
        let mut registry = SystemRegistry::with_builtins();
        registry.register(SystemKind::Tikv, bomb);
        let scenario = Scenario {
            systems: vec![
                SystemEntry {
                    spec: SystemSpec::new(SystemKind::Etcd),
                    columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
                },
                SystemEntry {
                    spec: SystemSpec::new(SystemKind::Tikv),
                    columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
                },
            ],
            ..tiny_scenario(1)
        };
        for jobs in [1, 4] {
            let report = run_plan_with(&scenario.plan(), &registry, &ExecOptions::with_jobs(jobs));
            // The sibling probe still completes...
            assert!(report.value("etcd", "tps").unwrap() > 0.0, "jobs={jobs}");
            // ...the failed probe keeps its column shape (NaN → JSON null)...
            assert!(report.value("TiKV", "tps").unwrap().is_nan(), "jobs={jobs}");
            // ...and the failure is labelled with row and probe.
            assert_eq!(report.failures.len(), 1, "jobs={jobs}");
            let failure = &report.failures[0];
            assert_eq!(failure.row, "TiKV");
            assert_eq!(failure.probe, "TiKV");
            assert_eq!(failure.index, 1);
            assert_eq!(failure.message, "panicked (non-string payload)");
            let rendered = report.render();
            assert!(rendered.contains("!! probe 'TiKV' on row 'TiKV' failed"));
        }
    }

    #[test]
    fn progress_reports_every_probe_in_completion_order() {
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::Theta(vec![0.0, 0.5, 1.0]);
        let plan = scenario.plan();
        for jobs in [1, 4] {
            let statuses: Mutex<Vec<ProbeStatus>> = Mutex::new(Vec::new());
            let record = |s: &ProbeStatus| statuses.lock().unwrap().push(s.clone());
            let options = ExecOptions {
                jobs,
                progress: Some(&record),
                ..ExecOptions::default()
            };
            run_plan_with(&plan, &SystemRegistry::with_builtins(), &options);
            let statuses = statuses.into_inner().unwrap();
            assert_eq!(statuses.len(), 3, "jobs={jobs}");
            // `done` counts completions 1..=total; indexes cover the plan.
            assert_eq!(
                statuses.iter().map(|s| s.done).collect::<Vec<_>>(),
                vec![1, 2, 3]
            );
            let mut indexes: Vec<usize> = statuses.iter().map(|s| s.index).collect();
            indexes.sort_unstable();
            assert_eq!(indexes, vec![0, 1, 2]);
            assert!(statuses.iter().all(|s| s.total == 3 && s.error.is_none()));
            assert!(statuses.iter().all(|s| s.probe == "etcd"));
        }
    }

    #[test]
    fn an_empty_sweep_or_empty_plan_yields_an_empty_report() {
        // An axis with zero points expands to zero rows (regression: this
        // used to fall back to the sweepless one-row-per-system grid).
        let mut scenario = tiny_scenario(1);
        scenario.sweep = Sweep::Theta(Vec::new());
        let plan = scenario.plan();
        assert_eq!(plan.rows.len(), 0);
        assert_eq!(plan.probe_count(), 0);
        let report = run_plan(&plan);
        assert!(report.rows.is_empty() && report.failures.is_empty());
        assert!(report.render().starts_with("== T"));
        // A scenario with no systems behaves the same way.
        let mut empty = tiny_scenario(1);
        empty.systems.clear();
        let report = run_plan(&empty.plan());
        assert!(report.rows.is_empty());
    }

    #[test]
    fn effective_jobs_prefers_explicit_over_env_and_detects_by_default() {
        assert_eq!(ExecOptions::with_jobs(3).effective_jobs(), 3);
        // jobs=0 resolves DICHOTOMY_JOBS or available parallelism — either
        // way, at least one worker.
        assert!(ExecOptions::default().effective_jobs() >= 1);
    }

    #[test]
    fn a_shared_pool_batch_matches_per_plan_execution_exactly() {
        // The cross-experiment pool: running several plans through one
        // run_plans_with batch must reproduce the per-plan reports byte for
        // byte (values, series, failures), sequentially and in parallel, and
        // attribute every probe to its plan in the progress stream.
        let registry = SystemRegistry::with_builtins();
        let mut sweep_scenario = tiny_scenario(5);
        sweep_scenario.sweep = Sweep::Theta(vec![0.0, 0.9]);
        let plans = [
            tiny_scenario(5).plan(),
            sweep_scenario.plan(),
            crate::experiments::fault01_plan(80, 5),
        ];
        let refs: Vec<&ExperimentPlan> = plans.iter().collect();
        let solo: Vec<ExperimentReport> = plans
            .iter()
            .map(|p| run_plan_with(p, &registry, &ExecOptions::with_jobs(1)))
            .collect();
        for jobs in [1, 4] {
            let statuses: Mutex<Vec<ProbeStatus>> = Mutex::new(Vec::new());
            let record = |s: &ProbeStatus| statuses.lock().unwrap().push(s.clone());
            let options = ExecOptions {
                jobs,
                progress: Some(&record),
                ..ExecOptions::default()
            };
            let batch = run_plans_with(&refs, &registry, &options);
            assert_eq!(batch.len(), 3, "jobs={jobs}");
            for (outcome, expected) in batch.iter().zip(&solo) {
                assert_eq!(&outcome.report, expected, "jobs={jobs}");
                assert!(outcome.probe_wall_ms >= 0.0);
            }
            let statuses = statuses.into_inner().unwrap();
            let total = plans.iter().map(|p| p.probe_count()).sum::<usize>();
            assert_eq!(statuses.len(), total, "jobs={jobs}");
            // Every status names its plan; `done` counts the whole batch.
            let mut per_plan = vec![0usize; plans.len()];
            for s in &statuses {
                assert_eq!(s.total, total);
                per_plan[s.plan] += 1;
            }
            assert_eq!(
                per_plan,
                plans.iter().map(|p| p.probe_count()).collect::<Vec<_>>()
            );
            assert_eq!(
                statuses.iter().map(|s| s.done).collect::<Vec<_>>(),
                (1..=total).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn duplicate_probes_execute_once_and_fan_out() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        fn counting(spec: &SystemSpec) -> Box<dyn dichotomy_systems::TransactionalSystem> {
            BUILDS.fetch_add(1, Ordering::Relaxed);
            SystemRegistry::with_builtins().build(spec).unwrap()
        }
        let mut registry = SystemRegistry::with_builtins();
        registry.register(SystemKind::Etcd, counting);
        // Two byte-identical probes reading *different* columns, plus one
        // labelled-distinct probe: dedup must execute two systems, not
        // three, and still give every slot its own column extraction.
        let scenario = Scenario {
            systems: vec![
                SystemEntry {
                    spec: SystemSpec::new(SystemKind::Etcd),
                    columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
                },
                SystemEntry {
                    spec: SystemSpec::new(SystemKind::Etcd),
                    columns: vec![
                        ColumnSpec::new("tps", Metric::ThroughputTps),
                        ColumnSpec::new("lat_ms", Metric::LatencyMeanMs),
                    ],
                },
                SystemEntry {
                    spec: SystemSpec::new(SystemKind::Etcd).with_label("etcd-b"),
                    columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
                },
            ],
            ..tiny_scenario(3)
        };
        let plan = scenario.plan();
        for jobs in [1, 4] {
            BUILDS.store(0, Ordering::Relaxed);
            let statuses: Mutex<Vec<ProbeStatus>> = Mutex::new(Vec::new());
            let record = |s: &ProbeStatus| statuses.lock().unwrap().push(s.clone());
            let options = ExecOptions {
                jobs,
                progress: Some(&record),
                ..ExecOptions::default()
            };
            let outcome = run_plans_with(&[&plan], &registry, &options).pop().unwrap();
            assert_eq!(BUILDS.load(Ordering::Relaxed), 2, "jobs={jobs}");
            assert_eq!(outcome.probes, 3, "jobs={jobs}");
            assert_eq!(outcome.distinct_probes, 2, "jobs={jobs}");
            assert_eq!(outcome.cache_hits, 0);
            assert!(outcome.dedup_saved_ms > 0.0, "jobs={jobs}");
            assert_eq!(outcome.calibration.len(), 2, "jobs={jobs}");
            // The shared result reaches both slots; the distinct probe ran
            // on its own.
            let rows = &outcome.report.rows;
            assert_eq!(rows[0].values[0], rows[1].values[0]);
            assert_eq!(rows[1].values.len(), 2);
            assert!(rows[2].values[0].1 > 0.0);
            // Progress saw all three slots, exactly one marked deduped.
            let statuses = statuses.into_inner().unwrap();
            assert_eq!(statuses.len(), 3, "jobs={jobs}");
            assert_eq!(statuses.iter().filter(|s| s.deduped).count(), 1);
            assert!(statuses.iter().all(|s| !s.cached));
        }
    }

    /// An in-memory [`ProbeCache`] that round-trips results through the
    /// binary codec — the same serialization path the on-disk cache uses.
    #[derive(Default)]
    struct MemCache {
        map: Mutex<std::collections::HashMap<Vec<u8>, Vec<u8>>>,
    }

    impl ProbeCache for MemCache {
        fn load(&self, key: &[u8]) -> Option<ProbeResult> {
            let bytes = self.map.lock().unwrap().get(key).cloned()?;
            Some(ProbeResult::decode(&bytes).expect("stored entries decode"))
        }
        fn store(&self, key: &[u8], result: &ProbeResult) {
            self.map
                .lock()
                .unwrap()
                .insert(key.to_vec(), result.encode());
        }
    }

    #[test]
    fn a_probe_cache_round_trips_every_kind_and_mode_byte_identically() {
        use crate::metrics::MetricsMode;
        // Every system kind under both metrics modes, plus the fault
        // scenario: a cold run through an (empty) cache and a warm run
        // through the filled cache must produce identical reports — the
        // codec round-trip is exact, not approximate.
        let registry = SystemRegistry::with_builtins();
        let cache = MemCache::default();
        let mut plans: Vec<ExperimentPlan> = Vec::new();
        for &kind in SystemKind::ALL.iter() {
            for mode in [MetricsMode::Exact, MetricsMode::Streaming] {
                let mut scenario = kind_scenario(kind);
                scenario.driver.metrics = mode;
                plans.push(scenario.plan());
            }
        }
        plans.push(crate::experiments::fault01_plan(80, 7));
        let refs: Vec<&ExperimentPlan> = plans.iter().collect();
        let options = ExecOptions {
            jobs: 4,
            cache: Some(&cache),
            ..ExecOptions::default()
        };
        let cold = run_plans_with(&refs, &registry, &options);
        assert!(cold.iter().all(|o| o.cache_hits == 0), "cache started cold");
        let warm = run_plans_with(&refs, &registry, &options);
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.report, w.report, "{}", c.report.id);
        }
        let distinct: usize = warm.iter().map(|o| o.distinct_probes).sum();
        let hits: usize = warm.iter().map(|o| o.cache_hits).sum();
        assert_eq!(hits, distinct, "every distinct probe hits the warm cache");
        assert!(warm.iter().all(|o| o.calibration.is_empty()));
    }

    #[test]
    fn probe_keys_track_every_input_that_changes_the_measurement() {
        use crate::metrics::MetricsMode;
        use dichotomy_simnet::NodeFault;
        let probe_of = |s: &Scenario| s.plan().rows[0].runs[0].probe.clone();
        let base = tiny_scenario(1);
        let key = probe_key_bytes(&probe_of(&base));
        // Re-expanding the identical scenario reproduces the key.
        assert_eq!(key, probe_key_bytes(&probe_of(&tiny_scenario(1))));
        // Seed, workload knob, metrics mode and fault schedule all reach it.
        assert_ne!(key, probe_key_bytes(&probe_of(&tiny_scenario(2))));
        let mut theta = tiny_scenario(1);
        theta.workload = theta.workload.with_theta(0.42);
        assert_ne!(key, probe_key_bytes(&probe_of(&theta)));
        let mut streaming = tiny_scenario(1);
        streaming.driver.metrics = MetricsMode::Streaming;
        assert_ne!(key, probe_key_bytes(&probe_of(&streaming)));
        let mut faulted = tiny_scenario(1);
        let mut faults = dichotomy_simnet::FaultPlan::none();
        faults.add(NodeFault::crash_until(dichotomy_common::NodeId(0), 10, 20));
        faulted.faults = Some(faults);
        assert_ne!(key, probe_key_bytes(&probe_of(&faulted)));
        // The content hash follows the key.
        assert_ne!(
            fnv1a_64(&key),
            fnv1a_64(&probe_key_bytes(&probe_of(&tiny_scenario(2))))
        );
        // Non-driving probes key on their own parameters.
        let adr = |records, record_size| Probe::AdrOverhead {
            records,
            record_size,
        };
        assert_eq!(probe_key_bytes(&adr(10, 64)), probe_key_bytes(&adr(10, 64)));
        assert_ne!(probe_key_bytes(&adr(10, 64)), probe_key_bytes(&adr(10, 65)));
    }

    #[test]
    fn longest_first_scheduling_beats_arrival_order_on_a_skewed_plan() {
        // A synthetic skewed plan: seven quick probes followed by one heavy
        // straggler (50× the transactions). Arrival order puts the
        // straggler last, so one worker grinds it alone at the tail; the
        // LPT schedule starts it first.
        let quick = DriverConfig::saturating(100);
        let heavy = DriverConfig::saturating(5_000);
        let probe = |driver: &DriverConfig| Probe::Drive {
            system: SystemSpec::new(SystemKind::Etcd),
            workload: WorkloadSpec::ycsb(YcsbMix::UpdateOnly),
            driver: driver.clone(),
        };
        let mut probes: Vec<Probe> = (0..7).map(|_| probe(&quick)).collect();
        probes.push(probe(&heavy));
        let costs: Vec<f64> = probes.iter().map(predicted_probe_cost).collect();
        assert!(
            costs[7] > costs[0] * 10.0,
            "predicted cost scales with transactions: {costs:?}"
        );
        let order = lpt_order(&costs);
        assert_eq!(order[0], 7, "the straggler is scheduled first");

        // Greedy two-worker pool simulation: each item goes to the
        // earliest-free worker, makespan is the latest finish.
        fn makespan(order: &[usize], costs: &[f64], workers: usize) -> f64 {
            let mut load = vec![0.0f64; workers];
            for &i in order {
                let w = (0..workers)
                    .min_by(|&a, &b| load[a].partial_cmp(&load[b]).unwrap())
                    .unwrap();
                load[w] += costs[i];
            }
            load.into_iter().fold(0.0, f64::max)
        }
        let arrival: Vec<usize> = (0..costs.len()).collect();
        let m_arrival = makespan(&arrival, &costs, 2);
        let m_lpt = makespan(&order, &costs, 2);
        assert!(
            m_lpt < m_arrival,
            "LPT makespan {m_lpt:.0} must beat arrival order {m_arrival:.0}"
        );
    }

    #[test]
    fn fail_fast_drains_the_queue_after_the_first_failure() {
        fn bomb(_spec: &SystemSpec) -> Box<dyn dichotomy_systems::TransactionalSystem> {
            panic!("intentional probe failure")
        }
        let mut registry = SystemRegistry::with_builtins();
        registry.register(SystemKind::Tikv, bomb);
        // Three rows: etcd (ok), TiKV (bomb), etcd (would be ok). With
        // fail_fast and one worker the third probe must be skipped, with a
        // distinguishable failure message and NaN columns.
        let scenario = Scenario {
            systems: vec![
                SystemEntry {
                    spec: SystemSpec::new(SystemKind::Etcd),
                    columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
                },
                SystemEntry {
                    spec: SystemSpec::new(SystemKind::Tikv),
                    columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
                },
                SystemEntry {
                    spec: SystemSpec::new(SystemKind::Etcd).with_label("etcd-5"),
                    columns: vec![ColumnSpec::new("tps", Metric::ThroughputTps)],
                },
            ],
            ..tiny_scenario(1)
        };
        let options = ExecOptions {
            jobs: 1,
            fail_fast: true,
            ..ExecOptions::default()
        };
        let report = run_plan_with(&scenario.plan(), &registry, &options);
        assert!(
            report.value("etcd", "tps").unwrap() > 0.0,
            "ran before the failure"
        );
        assert!(report.value("TiKV", "tps").unwrap().is_nan());
        assert!(report.value("etcd-5", "tps").unwrap().is_nan());
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failures[0].message, "intentional probe failure");
        assert_eq!(
            report.failures[1].message,
            "skipped: an earlier probe failed (fail-fast)"
        );
        // Without fail_fast the trailing probe still runs.
        let report = run_plan_with(&scenario.plan(), &registry, &ExecOptions::with_jobs(1));
        assert!(report.value("etcd-5", "tps").unwrap() > 0.0);
        assert_eq!(report.failures.len(), 1);
    }
}
