//! Invariant oracles: cross-cutting correctness checks run over every
//! receipt stream after every probe (Rudra-style exhaustive checking applied
//! to model semantics instead of unsafe code).
//!
//! An [`InvariantOracle`] observes each [`TxnReceipt`] as the driver drains
//! it — so the checks work identically under `MetricsMode::Exact` and
//! `MetricsMode::Streaming` — and renders a verdict once the run is over.
//! The standard set ([`OracleSet::standard`]):
//!
//! * **`receipt-conservation`** — every submitted transaction produced
//!   exactly one receipt: observed receipts == arrivals issued. A fault
//!   schedule may abort transactions, but it must never lose them.
//! * **`no-duplicate-receipt`** — no transaction id is receipted twice.
//! * **`commit-order-monotonic`** — per-receipt causality (a transaction
//!   cannot finish before it was submitted), and for chain-committed
//!   receipts that claim a total order (a `commit_version` plus a
//!   `consensus` phase, i.e. block heights), the claimed order must agree
//!   with finish time: a higher block never completes before a lower one.
//! * **`no-clamped-events`** — the engine never clamped a stage event into
//!   the past; queueing stayed causal under the fault schedule.
//!
//! Violations surface as labelled probe failures (the scenario layer turns
//! them into `ProbeFailure`s) and as an oracle-report section per row in
//! `repro --json`.

use dichotomy_common::{Decode, Encode, TxnId, TxnReceipt};
// lint: allow(D003) -- membership-only dedup set on the 1M-receipt hot path; iteration order never observed
use std::collections::HashSet;

/// End-of-run facts the driver hands every oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleContext {
    /// Arrivals the driver issued (excluding preload).
    pub arrivals_issued: u64,
    /// Stage events the engine clamped into the past.
    pub events_clamped: u64,
}

/// A cross-cutting invariant checked over one run's receipt stream.
///
/// Implementations accumulate state in [`observe`](Self::observe) (called
/// once per receipt, in the order the run surfaced them) and deliver the
/// verdict in [`check`](Self::check).
pub trait InvariantOracle: Send {
    /// Stable label, used in probe-failure messages and the JSON report.
    fn name(&self) -> &'static str;
    /// Observe one receipt.
    fn observe(&mut self, receipt: &TxnReceipt);
    /// Final verdict: `Err(description)` on violation.
    fn check(&mut self, ctx: &OracleContext) -> Result<(), String>;
}

/// One oracle's verdict for a finished run.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleOutcome {
    /// The oracle's label.
    pub name: &'static str,
    /// `Some(description)` if the invariant was violated.
    pub violation: Option<String>,
}

/// All oracle verdicts for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OracleReport {
    /// One outcome per oracle, in registration order.
    pub outcomes: Vec<OracleOutcome>,
}

impl OracleReport {
    /// Whether every oracle passed (vacuously true when none ran).
    pub fn passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.violation.is_none())
    }

    /// The violated outcomes, in registration order.
    pub fn violations(&self) -> impl Iterator<Item = &OracleOutcome> {
        self.outcomes.iter().filter(|o| o.violation.is_some())
    }
}

impl Encode for OracleOutcome {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.violation.encode_into(out);
    }
}

impl Decode for OracleOutcome {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(OracleOutcome {
            // Oracle names are `&'static str` literals on the encode side;
            // decode interns them back into 'static lifetime.
            name: dichotomy_common::intern(&String::decode_from(input)?),
            violation: Option::decode_from(input)?,
        })
    }
}

impl Encode for OracleReport {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.outcomes.encode_into(out);
    }
}

impl Decode for OracleReport {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(OracleReport {
            outcomes: Vec::decode_from(input)?,
        })
    }
}

/// The oracle battery one run feeds: receipts in, [`OracleReport`] out.
pub struct OracleSet {
    oracles: Vec<Box<dyn InvariantOracle>>,
}

impl OracleSet {
    /// No oracles (runs that opt out of checking).
    pub fn empty() -> Self {
        OracleSet {
            oracles: Vec::new(),
        }
    }

    /// The standard battery documented at the module level.
    pub fn standard() -> Self {
        OracleSet {
            oracles: vec![
                Box::new(ReceiptConservation::default()),
                Box::new(NoDuplicateReceipt::default()),
                Box::new(CommitOrderMonotonic::default()),
                Box::new(NoClampedEvents),
            ],
        }
    }

    /// A custom battery.
    pub fn with_oracles(oracles: Vec<Box<dyn InvariantOracle>>) -> Self {
        OracleSet { oracles }
    }

    /// Whether the set holds no oracles.
    pub fn is_empty(&self) -> bool {
        self.oracles.is_empty()
    }

    /// Feed one receipt to every oracle.
    pub fn observe(&mut self, receipt: &TxnReceipt) {
        for oracle in &mut self.oracles {
            oracle.observe(receipt);
        }
    }

    /// Feed a drained batch.
    pub fn observe_all(&mut self, receipts: &[TxnReceipt]) {
        for r in receipts {
            self.observe(r);
        }
    }

    /// Collect every verdict.
    pub fn finish(mut self, ctx: OracleContext) -> OracleReport {
        OracleReport {
            outcomes: self
                .oracles
                .iter_mut()
                .map(|oracle| OracleOutcome {
                    name: oracle.name(),
                    violation: oracle.check(&ctx).err(),
                })
                .collect(),
        }
    }
}

/// `receipt-conservation`: observed receipts == arrivals issued.
#[derive(Default)]
struct ReceiptConservation {
    observed: u64,
}

impl InvariantOracle for ReceiptConservation {
    fn name(&self) -> &'static str {
        "receipt-conservation"
    }

    fn observe(&mut self, _receipt: &TxnReceipt) {
        self.observed += 1;
    }

    fn check(&mut self, ctx: &OracleContext) -> Result<(), String> {
        if self.observed == ctx.arrivals_issued {
            Ok(())
        } else {
            Err(format!(
                "{} arrivals issued but {} receipts observed ({} {})",
                ctx.arrivals_issued,
                self.observed,
                ctx.arrivals_issued.abs_diff(self.observed),
                if self.observed < ctx.arrivals_issued {
                    "lost"
                } else {
                    "conjured"
                },
            ))
        }
    }
}

/// `no-duplicate-receipt`: no transaction id receipted twice.
#[derive(Default)]
struct NoDuplicateReceipt {
    // lint: allow(D003) -- contains-then-insert only; nothing iterates it
    seen: HashSet<TxnId>,
    first_duplicate: Option<TxnId>,
}

impl InvariantOracle for NoDuplicateReceipt {
    fn name(&self) -> &'static str {
        "no-duplicate-receipt"
    }

    fn observe(&mut self, receipt: &TxnReceipt) {
        if !self.seen.insert(receipt.txn_id) && self.first_duplicate.is_none() {
            self.first_duplicate = Some(receipt.txn_id);
        }
    }

    fn check(&mut self, _ctx: &OracleContext) -> Result<(), String> {
        match self.first_duplicate {
            None => Ok(()),
            Some(id) => Err(format!("transaction {id:?} was receipted more than once")),
        }
    }
}

/// `commit-order-monotonic`: per-receipt causality, plus agreement between
/// claimed chain order and time for block-committed receipts.
#[derive(Default)]
struct CommitOrderMonotonic {
    /// First receipt that finished before it was submitted.
    causality_break: Option<(TxnId, u64, u64)>,
    /// (finish, observation index, block height) of chain-committed receipts.
    chain: Vec<(u64, usize, u64)>,
    observed: usize,
}

impl InvariantOracle for CommitOrderMonotonic {
    fn name(&self) -> &'static str {
        "commit-order-monotonic"
    }

    fn observe(&mut self, receipt: &TxnReceipt) {
        let idx = self.observed;
        self.observed += 1;
        if receipt.finish_time < receipt.submit_time && self.causality_break.is_none() {
            self.causality_break = Some((receipt.txn_id, receipt.submit_time, receipt.finish_time));
        }
        // Only chain commits claim a total order the oracle can hold against
        // time: a commit_version (block height) plus a consensus phase.
        if receipt.status.is_committed() {
            if let Some(height) = receipt.commit_version {
                if receipt
                    .phase_latencies
                    .iter()
                    .any(|(name, _)| *name == "consensus")
                {
                    self.chain.push((receipt.finish_time, idx, height));
                }
            }
        }
    }

    fn check(&mut self, _ctx: &OracleContext) -> Result<(), String> {
        if let Some((id, submit, finish)) = self.causality_break {
            return Err(format!(
                "transaction {id:?} finished at {finish} before its submission at {submit}"
            ));
        }
        self.chain
            .sort_unstable_by_key(|&(finish, idx, _)| (finish, idx));
        let mut prev: Option<(u64, u64)> = None;
        for &(finish, _, height) in &self.chain {
            if let Some((prev_height, prev_finish)) = prev {
                if height < prev_height {
                    return Err(format!(
                        "block {height} (finish {finish}) completed after block \
                         {prev_height} (finish {prev_finish})"
                    ));
                }
            }
            prev = Some((height, finish));
        }
        Ok(())
    }
}

/// `no-clamped-events`: the engine never clamped a stage event into the past.
struct NoClampedEvents;

impl InvariantOracle for NoClampedEvents {
    fn name(&self) -> &'static str {
        "no-clamped-events"
    }

    fn observe(&mut self, _receipt: &TxnReceipt) {}

    fn check(&mut self, ctx: &OracleContext) -> Result<(), String> {
        if ctx.events_clamped == 0 {
            Ok(())
        } else {
            Err(format!(
                "{} stage events were clamped into the past",
                ctx.events_clamped
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{AbortReason, ClientId};

    fn committed(seq: u64, submit: u64, finish: u64) -> TxnReceipt {
        TxnReceipt::committed(TxnId::new(ClientId(1), seq), submit, finish)
    }

    fn chain_committed(seq: u64, submit: u64, finish: u64, height: u64) -> TxnReceipt {
        let mut r = committed(seq, submit, finish);
        r.commit_version = Some(height);
        r.phase_latencies = vec![("proposal", 1), ("consensus", 1), ("commit", 1)];
        r
    }

    fn run(receipts: &[TxnReceipt], ctx: OracleContext) -> OracleReport {
        let mut set = OracleSet::standard();
        set.observe_all(receipts);
        set.finish(ctx)
    }

    #[test]
    fn a_clean_run_passes_every_oracle() {
        let receipts = vec![
            committed(1, 100, 200),
            chain_committed(2, 150, 300, 1),
            chain_committed(3, 160, 300, 1),
            chain_committed(4, 400, 500, 2),
        ];
        let report = run(
            &receipts,
            OracleContext {
                arrivals_issued: 4,
                events_clamped: 0,
            },
        );
        assert!(report.passed(), "{:?}", report);
        assert_eq!(report.outcomes.len(), 4);
    }

    #[test]
    fn a_lost_receipt_trips_conservation() {
        let receipts = vec![committed(1, 100, 200)];
        let report = run(
            &receipts,
            OracleContext {
                arrivals_issued: 2,
                events_clamped: 0,
            },
        );
        let v: Vec<_> = report.violations().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "receipt-conservation");
        assert!(v[0].violation.as_ref().unwrap().contains("lost"));
    }

    #[test]
    fn a_conjured_receipt_also_trips_conservation() {
        let receipts = vec![committed(1, 100, 200), committed(2, 100, 200)];
        let report = run(
            &receipts,
            OracleContext {
                arrivals_issued: 1,
                events_clamped: 0,
            },
        );
        let v: Vec<_> = report.violations().collect();
        assert_eq!(v.len(), 1);
        assert!(v[0].violation.as_ref().unwrap().contains("conjured"));
    }

    #[test]
    fn a_duplicated_receipt_trips_the_duplicate_oracle() {
        let receipts = vec![committed(1, 100, 200), committed(1, 100, 200)];
        let report = run(
            &receipts,
            OracleContext {
                arrivals_issued: 2,
                events_clamped: 0,
            },
        );
        let names: Vec<_> = report.violations().map(|o| o.name).collect();
        assert!(names.contains(&"no-duplicate-receipt"), "{names:?}");
    }

    #[test]
    fn a_receipt_finishing_before_submission_breaks_causality() {
        let receipts = vec![committed(1, 500, 200)];
        let report = run(
            &receipts,
            OracleContext {
                arrivals_issued: 1,
                events_clamped: 0,
            },
        );
        let v: Vec<_> = report.violations().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "commit-order-monotonic");
    }

    #[test]
    fn a_higher_block_finishing_first_breaks_chain_order() {
        let receipts = vec![
            chain_committed(1, 100, 900, 1),
            chain_committed(2, 100, 500, 2),
        ];
        let report = run(
            &receipts,
            OracleContext {
                arrivals_issued: 2,
                events_clamped: 0,
            },
        );
        let v: Vec<_> = report.violations().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "commit-order-monotonic");
        assert!(v[0].violation.as_ref().unwrap().contains("block"));
    }

    #[test]
    fn clamped_events_trip_their_oracle_even_with_clean_receipts() {
        let report = run(
            &[],
            OracleContext {
                arrivals_issued: 0,
                events_clamped: 3,
            },
        );
        let v: Vec<_> = report.violations().collect();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].name, "no-clamped-events");
    }

    #[test]
    fn aborted_receipts_count_toward_conservation_like_any_other() {
        let mut aborted =
            TxnReceipt::aborted(TxnId::new(ClientId(2), 9), AbortReason::Overload, 100, 400);
        aborted.commit_version = None;
        let report = run(
            &[committed(1, 100, 200), aborted],
            OracleContext {
                arrivals_issued: 2,
                events_clamped: 0,
            },
        );
        assert!(report.passed());
    }
}
