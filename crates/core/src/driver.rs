//! The benchmark driver: plays the role YCSB, OLTPBench and Caliper play in
//! the paper's setup (Section 4.2).
//!
//! The driver is an event loop on the shared simulation engine. Open-loop
//! arrivals (exponential inter-arrival gaps at the offered load) are
//! scheduled as events and interleave, on one clock, with the stage events
//! the system model schedules for itself — block cut timers, validation
//! completions, replication rounds. Backlog and saturation therefore emerge
//! from queueing on the model's service processes rather than from post-hoc
//! arithmetic: offering far more load than the system can absorb measures
//! saturated (peak) throughput; offering a trickle measures unsaturated
//! latency — the two regimes Section 5.2.1 distinguishes.

use dichotomy_common::rng::{self, Rng};
use dichotomy_common::{ClientId, Timestamp};
use dichotomy_systems::{run_to_completion_with, Engine, SysEvent, TransactionalSystem};
use dichotomy_workload::Workload;

use crate::metrics::{Metrics, TimeSeries};

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of transactions to issue.
    pub transactions: u64,
    /// Offered load in transactions per second of simulated time.
    pub offered_tps: f64,
    /// Number of simulated clients (arrivals are spread across them).
    pub clients: u64,
    /// Whether to pre-load the workload's initial records (Figure 4/5 do;
    /// storage-size experiments load their own data).
    pub preload: bool,
    /// Width of the windowed time-series buckets (µs). `None` derives a
    /// window from the run's makespan (≈ 20 windows).
    pub window_us: Option<u64>,
    /// Receipts finishing before this simulated time are trimmed from the
    /// time series (warm-up).
    pub warmup_us: Timestamp,
    /// RNG seed for arrival jitter.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            transactions: 2_000,
            offered_tps: 50_000.0,
            clients: 32,
            preload: true,
            window_us: None,
            warmup_us: 0,
            seed: rng::DEFAULT_SEED,
        }
    }
}

impl DriverConfig {
    /// A configuration that saturates any of the modelled systems (peak
    /// throughput measurement).
    pub fn saturating(transactions: u64) -> Self {
        DriverConfig {
            transactions,
            offered_tps: 200_000.0,
            ..DriverConfig::default()
        }
    }

    /// A light load for unsaturated latency measurements.
    pub fn unsaturated(transactions: u64) -> Self {
        DriverConfig {
            transactions,
            offered_tps: 50.0,
            ..DriverConfig::default()
        }
    }

    /// Replace the RNG seed. `saturating`/`unsaturated` keep the workspace
    /// default seed; experiment plans and `repro --seed` thread their seed
    /// through this so that runs are reproducible *per seed* rather than
    /// always identical.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fix the time-series window width.
    pub fn with_window(mut self, window_us: u64) -> Self {
        self.window_us = Some(window_us);
        self
    }
}

/// The result of one driver run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// Windowed time series of the same receipts (throughput, latency
    /// percentiles and abort rate per simulated-time window).
    pub series: TimeSeries,
    /// Simulated time of the last completion.
    pub makespan_us: Timestamp,
    /// Offered load used.
    pub offered_tps: f64,
    /// Events the engine delivered during the run (arrivals + stages).
    pub events_delivered: u64,
    /// Events that were scheduled in the past and clamped to the engine
    /// clock. Nonzero values point at causality bugs in a system model
    /// (timestamp underflow); normal runs report 0.
    pub events_clamped: u64,
}

/// Generates the open-loop arrival schedule: exponential inter-arrival gaps
/// at the offered rate, round-robin across clients, with a small per-arrival
/// jitter. Arrival timestamps are strictly monotonic — per client and across
/// clients — so event order never depends on heap tie-breaking.
struct ArrivalProcess {
    rng: rng::StdRng,
    mean_gap_us: f64,
    clients: u64,
    seqs: Vec<u64>,
    issued: u64,
    base: Timestamp,
    last_arrival: Timestamp,
}

impl ArrivalProcess {
    fn new(config: &DriverConfig) -> Self {
        ArrivalProcess {
            rng: rng::seeded(rng::derive_seed(config.seed, "driver")),
            mean_gap_us: 1e6 / config.offered_tps.max(1e-6),
            clients: config.clients.max(1),
            seqs: vec![0u64; config.clients.max(1) as usize],
            issued: 0,
            base: 0,
            last_arrival: 0,
        }
    }

    /// The next arrival: `(client, per-client seq, timestamp)`.
    fn next(&mut self) -> (ClientId, u64, Timestamp) {
        let client_idx = (self.issued % self.clients) as usize;
        self.issued += 1;
        self.seqs[client_idx] += 1;
        // Exponential inter-arrival times approximate an open-loop Poisson
        // arrival process at the offered rate.
        self.base += rng::exp_delay_us(&mut self.rng, self.mean_gap_us).max(1);
        // Small per-arrival jitter so clients do not submit in lockstep. The
        // jitter does not accumulate into the base clock (it would bias the
        // offered rate), and the result is bumped past the previous arrival
        // so timestamps never tie — across clients included.
        let jitter = self.rng.gen_range(0..2u64);
        let at = (self.base + jitter).max(self.last_arrival + 1);
        self.last_arrival = at;
        (ClientId(client_idx as u64), self.seqs[client_idx], at)
    }
}

/// Run `workload` against `system` under the given driver configuration.
///
/// The event loop: schedule an arrival, dispatch events in `(time, seq)`
/// order — handing arrivals to the system and stage events back to it —
/// scheduling the next arrival as each one fires, then drain the queue and
/// aggregate the receipts.
pub fn run_workload(
    system: &mut dyn TransactionalSystem,
    workload: &mut dyn Workload,
    config: &DriverConfig,
) -> RunStats {
    if config.preload {
        let records = workload.initial_records();
        system.load(&records);
    }
    let mut engine = Engine::new();
    system.attach(&mut engine);

    let mut arrivals = ArrivalProcess::new(config);
    let schedule_next =
        |engine: &mut Engine, arrivals: &mut ArrivalProcess, workload: &mut dyn Workload| {
            let (client, seq, at) = arrivals.next();
            let mut txn = workload.next_transaction(client, seq);
            txn.submit_time = at;
            engine.schedule_at(at, SysEvent::Arrival(txn));
        };
    if config.transactions > 0 {
        schedule_next(&mut engine, &mut arrivals, workload);
    }
    run_to_completion_with(system, &mut engine, |engine| {
        if arrivals.issued < config.transactions {
            schedule_next(engine, &mut arrivals, workload);
        }
    });

    let receipts = system.drain_receipts();
    let metrics = Metrics::from_receipts(&receipts);
    let makespan_us = receipts
        .iter()
        .map(|r| r.finish_time)
        .max()
        .unwrap_or(engine.now());
    let window_us = config.window_us.unwrap_or((makespan_us / 20).max(1));
    let series = TimeSeries::from_receipts(&receipts, window_us, config.warmup_us);
    RunStats {
        metrics,
        series,
        makespan_us,
        offered_tps: config.offered_tps,
        events_delivered: engine.delivered(),
        events_clamped: engine.clamped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_systems::{Etcd, EtcdConfig, Quorum, QuorumConfig};
    use dichotomy_workload::{YcsbConfig, YcsbWorkload};

    fn small_ycsb(theta: f64) -> YcsbWorkload {
        YcsbWorkload::new(YcsbConfig {
            record_count: 1_000,
            record_size: 200,
            zipf_theta: theta,
            ..YcsbConfig::default()
        })
    }

    #[test]
    fn saturating_run_reports_positive_throughput_and_latency() {
        let mut system = Etcd::new(EtcdConfig::default());
        let mut workload = small_ycsb(0.0);
        let stats = run_workload(&mut system, &mut workload, &DriverConfig::saturating(500));
        assert_eq!(stats.metrics.committed, 500);
        assert!(stats.metrics.throughput_tps > 100.0);
        assert!(stats.metrics.latency.p95_us > 0);
        assert!(stats.makespan_us > 0);
        // Every arrival plus at least one stage event per write.
        assert!(stats.events_delivered > 500);
        assert_eq!(stats.events_clamped, 0, "no causality violations");
    }

    #[test]
    fn no_model_schedules_events_into_the_past() {
        // Drive every registered system kind through the event loop and
        // check the engine's clamp counter: a nonzero value means a model
        // scheduled a stage event before the current simulated time.
        use dichotomy_systems::{SystemKind, SystemSpec};
        for kind in SystemKind::ALL {
            let mut system = SystemSpec::new(kind).build().expect("builtin model");
            let mut workload = small_ycsb(0.4);
            let stats = run_workload(
                system.as_mut(),
                &mut workload,
                &DriverConfig::saturating(200),
            );
            assert_eq!(stats.events_clamped, 0, "{kind:?} clamped events");
        }
    }

    #[test]
    fn unsaturated_latency_is_lower_than_saturated_latency() {
        let build = || {
            Quorum::new(QuorumConfig {
                max_block_txns: 20,
                block_interval_us: 50_000,
                ..QuorumConfig::default()
            })
        };
        let mut saturated_sys = build();
        let saturated = run_workload(
            &mut saturated_sys,
            &mut small_ycsb(0.0),
            &DriverConfig::saturating(300),
        );
        let mut unsaturated_sys = build();
        let unsaturated = run_workload(
            &mut unsaturated_sys,
            &mut small_ycsb(0.0),
            &DriverConfig {
                transactions: 50,
                offered_tps: 20.0,
                ..DriverConfig::default()
            },
        );
        assert!(
            unsaturated.metrics.latency.mean_us < saturated.metrics.latency.mean_us,
            "unsaturated {} vs saturated {}",
            unsaturated.metrics.latency.mean_us,
            saturated.metrics.latency.mean_us
        );
    }

    #[test]
    fn saturating_runs_produce_a_backlog_shaped_time_series() {
        // Offer far more load than Quorum's serial pipeline absorbs: the
        // windowed latency (queueing delay) climbs across the run.
        let mut system = Quorum::new(QuorumConfig {
            max_block_txns: 50,
            block_interval_us: 50_000,
            ..QuorumConfig::default()
        });
        let stats = run_workload(
            &mut system,
            &mut small_ycsb(0.0),
            &DriverConfig::saturating(600),
        );
        let busy: Vec<_> = stats
            .series
            .windows
            .iter()
            .filter(|w| w.committed > 0)
            .collect();
        assert!(busy.len() >= 3, "expected several busy windows");
        let first = busy.first().unwrap();
        let last = busy.last().unwrap();
        assert!(
            last.latency.p50_us > first.latency.p50_us * 2,
            "backlog should inflate windowed latency: first p50 {} last p50 {}",
            first.latency.p50_us,
            last.latency.p50_us
        );
    }

    /// Records what the driver submits, committing everything instantly:
    /// makes the open-loop arrival process itself observable.
    #[derive(Default)]
    struct ArrivalRecorder {
        arrivals: Vec<Timestamp>,
        clients: Vec<u64>,
        receipts: Vec<dichotomy_common::TxnReceipt>,
    }

    impl TransactionalSystem for ArrivalRecorder {
        fn kind(&self) -> dichotomy_systems::SystemKind {
            dichotomy_systems::SystemKind::Etcd
        }
        fn load(&mut self, _records: &[(dichotomy_common::Key, dichotomy_common::Value)]) {}
        fn on_arrival(&mut self, txn: dichotomy_common::Transaction, engine: &mut Engine) {
            let arrival = engine.now();
            self.arrivals.push(arrival);
            self.clients.push(txn.id.client.0);
            self.receipts.push(dichotomy_common::TxnReceipt::committed(
                txn.id,
                arrival,
                arrival + 1,
            ));
        }
        fn drain_receipts(&mut self) -> Vec<dichotomy_common::TxnReceipt> {
            std::mem::take(&mut self.receipts)
        }
        fn footprint(&self) -> dichotomy_common::size::StorageBreakdown {
            dichotomy_common::size::StorageBreakdown::default()
        }
        fn node_count(&self) -> usize {
            1
        }
    }

    fn record_arrivals(config: &DriverConfig) -> ArrivalRecorder {
        let mut recorder = ArrivalRecorder::default();
        let mut workload = small_ycsb(0.0);
        run_workload(&mut recorder, &mut workload, config);
        recorder
    }

    #[test]
    fn arrival_times_are_strictly_increasing() {
        let recorder = record_arrivals(&DriverConfig {
            transactions: 2_000,
            offered_tps: 10_000.0,
            ..DriverConfig::default()
        });
        assert_eq!(recorder.arrivals.len(), 2_000);
        assert!(
            recorder.arrivals.windows(2).all(|w| w[0] < w[1]),
            "open-loop arrivals must advance monotonically"
        );
    }

    #[test]
    fn arrivals_never_tie_even_at_extreme_offered_load() {
        // Regression for the per-client jitter: at a mean gap of ~1 µs the
        // old cumulative jitter let two clients submit at the same µs tick,
        // leaving the interleaving to heap tie-breaking. Arrivals must be
        // strictly monotonic globally (hence per client too) and identical
        // across equal-seed runs.
        let config = DriverConfig {
            transactions: 5_000,
            offered_tps: 1_000_000.0,
            ..DriverConfig::default()
        };
        let a = record_arrivals(&config);
        assert!(
            a.arrivals.windows(2).all(|w| w[0] < w[1]),
            "global strict monotonicity"
        );
        for client in 0..config.clients {
            let per_client: Vec<_> = a
                .arrivals
                .iter()
                .zip(&a.clients)
                .filter(|(_, c)| **c == client)
                .map(|(t, _)| *t)
                .collect();
            assert!(
                per_client.windows(2).all(|w| w[0] < w[1]),
                "client {client} arrivals must be strictly monotonic"
            );
        }
        let b = record_arrivals(&config);
        assert_eq!(a.arrivals, b.arrivals, "same seed, same schedule");
    }

    #[test]
    fn mean_inter_arrival_gap_tracks_the_offered_load() {
        for offered_tps in [1_000.0, 25_000.0] {
            let recorder = record_arrivals(&DriverConfig {
                transactions: 8_000,
                offered_tps,
                ..DriverConfig::default()
            });
            let span = (recorder.arrivals.last().unwrap() - recorder.arrivals[0]) as f64;
            let observed_gap = span / (recorder.arrivals.len() - 1) as f64;
            let expected_gap = 1e6 / offered_tps;
            assert!(
                (observed_gap - expected_gap).abs() < expected_gap * 0.1,
                "offered {offered_tps} tps: observed mean gap {observed_gap:.1} µs, \
                 expected ≈{expected_gap:.1} µs"
            );
        }
    }

    #[test]
    fn arrivals_cycle_round_robin_across_the_configured_clients() {
        let clients = 8u64;
        let transactions = 401u64;
        let recorder = record_arrivals(&DriverConfig {
            transactions,
            clients,
            ..DriverConfig::default()
        });
        // The i-th submission comes from client i mod `clients`, as the
        // DriverConfig docs promise.
        for (i, client) in recorder.clients.iter().enumerate() {
            assert_eq!(*client, i as u64 % clients, "submission {i}");
        }
        // Every client id in [0, clients) appears, and the spread is even to
        // within one transaction.
        let mut counts = vec![0u64; clients as usize];
        for client in &recorder.clients {
            counts[*client as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "uneven spread: {counts:?}");
    }

    #[test]
    fn driver_seed_changes_the_arrival_jitter() {
        let arrivals =
            |seed: u64| record_arrivals(&DriverConfig::saturating(500).with_seed(seed)).arrivals;
        assert_eq!(arrivals(7), arrivals(7));
        assert_ne!(arrivals(7), arrivals(8));
    }

    #[test]
    fn same_seed_reproduces_identical_results() {
        let run = || {
            let mut system = Etcd::new(EtcdConfig::default());
            let mut workload = small_ycsb(0.6);
            run_workload(&mut system, &mut workload, &DriverConfig::saturating(300))
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics.committed, b.metrics.committed);
        assert_eq!(a.metrics.latency.p50_us, b.metrics.latency.p50_us);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.events_delivered, b.events_delivered);
        assert_eq!(a.series, b.series);
    }
}
