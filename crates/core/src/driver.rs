//! The benchmark driver: plays the role YCSB, OLTPBench and Caliper play in
//! the paper's setup (Section 4.2).
//!
//! The driver generates transactions from a workload, stamps them with
//! arrival times drawn from an open-loop Poisson-like process at the chosen
//! offered load, feeds them to the system model in arrival order, and
//! aggregates the receipts. Offering far more load than the system can absorb
//! measures saturated (peak) throughput; offering a trickle measures
//! unsaturated latency — the two regimes Section 5.2.1 distinguishes.

use dichotomy_common::rng::{self, Rng};
use dichotomy_common::{ClientId, Timestamp};
use dichotomy_systems::TransactionalSystem;
use dichotomy_workload::Workload;

use crate::metrics::Metrics;

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of transactions to issue.
    pub transactions: u64,
    /// Offered load in transactions per second of simulated time.
    pub offered_tps: f64,
    /// Number of simulated clients (arrivals are spread across them).
    pub clients: u64,
    /// Whether to pre-load the workload's initial records (Figure 4/5 do;
    /// storage-size experiments load their own data).
    pub preload: bool,
    /// RNG seed for arrival jitter.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            transactions: 2_000,
            offered_tps: 50_000.0,
            clients: 32,
            preload: true,
            seed: rng::DEFAULT_SEED,
        }
    }
}

impl DriverConfig {
    /// A configuration that saturates any of the modelled systems (peak
    /// throughput measurement).
    pub fn saturating(transactions: u64) -> Self {
        DriverConfig {
            transactions,
            offered_tps: 200_000.0,
            ..DriverConfig::default()
        }
    }

    /// A light load for unsaturated latency measurements.
    pub fn unsaturated(transactions: u64) -> Self {
        DriverConfig {
            transactions,
            offered_tps: 50.0,
            ..DriverConfig::default()
        }
    }

    /// Replace the RNG seed. `saturating`/`unsaturated` keep the workspace
    /// default seed; experiment plans and `repro --seed` thread their seed
    /// through this so that runs are reproducible *per seed* rather than
    /// always identical.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The result of one driver run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// Simulated time of the last completion.
    pub makespan_us: Timestamp,
    /// Offered load used.
    pub offered_tps: f64,
}

/// Run `workload` against `system` under the given driver configuration.
pub fn run_workload(
    system: &mut dyn TransactionalSystem,
    workload: &mut dyn Workload,
    config: &DriverConfig,
) -> RunStats {
    if config.preload {
        let records = workload.initial_records();
        system.load(&records);
    }
    let mut rng = rng::seeded(rng::derive_seed(config.seed, "driver"));
    let mean_gap_us = 1e6 / config.offered_tps.max(1e-6);
    let mut now: Timestamp = 0;
    let mut seqs = vec![0u64; config.clients.max(1) as usize];
    for i in 0..config.transactions {
        let client_idx = (i % config.clients.max(1)) as usize;
        let client = ClientId(client_idx as u64);
        seqs[client_idx] += 1;
        let mut txn = workload.next_transaction(client, seqs[client_idx]);
        // Exponential inter-arrival times approximate an open-loop Poisson
        // arrival process at the offered rate.
        now += rng::exp_delay_us(&mut rng, mean_gap_us).max(1);
        // Small per-client jitter so clients do not submit in lockstep.
        now += rng.gen_range(0..2u64);
        txn.submit_time = now;
        system.submit(txn, now);
    }
    system.flush(now + 1_000_000);
    let receipts = system.drain_receipts();
    let metrics = Metrics::from_receipts(&receipts);
    let makespan_us = receipts.iter().map(|r| r.finish_time).max().unwrap_or(now);
    RunStats {
        metrics,
        makespan_us,
        offered_tps: config.offered_tps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_systems::{Etcd, EtcdConfig, Quorum, QuorumConfig};
    use dichotomy_workload::{YcsbConfig, YcsbWorkload};

    fn small_ycsb(theta: f64) -> YcsbWorkload {
        YcsbWorkload::new(YcsbConfig {
            record_count: 1_000,
            record_size: 200,
            zipf_theta: theta,
            ..YcsbConfig::default()
        })
    }

    #[test]
    fn saturating_run_reports_positive_throughput_and_latency() {
        let mut system = Etcd::new(EtcdConfig::default());
        let mut workload = small_ycsb(0.0);
        let stats = run_workload(&mut system, &mut workload, &DriverConfig::saturating(500));
        assert_eq!(stats.metrics.committed, 500);
        assert!(stats.metrics.throughput_tps > 100.0);
        assert!(stats.metrics.latency.p95_us > 0);
        assert!(stats.makespan_us > 0);
    }

    #[test]
    fn unsaturated_latency_is_lower_than_saturated_latency() {
        let build = || {
            Quorum::new(QuorumConfig {
                max_block_txns: 20,
                block_interval_us: 50_000,
                ..QuorumConfig::default()
            })
        };
        let mut saturated_sys = build();
        let saturated = run_workload(
            &mut saturated_sys,
            &mut small_ycsb(0.0),
            &DriverConfig::saturating(300),
        );
        let mut unsaturated_sys = build();
        let unsaturated = run_workload(
            &mut unsaturated_sys,
            &mut small_ycsb(0.0),
            &DriverConfig {
                transactions: 50,
                offered_tps: 20.0,
                ..DriverConfig::default()
            },
        );
        assert!(
            unsaturated.metrics.latency.mean_us < saturated.metrics.latency.mean_us,
            "unsaturated {} vs saturated {}",
            unsaturated.metrics.latency.mean_us,
            saturated.metrics.latency.mean_us
        );
    }

    /// Records what the driver submits, committing everything instantly:
    /// makes the open-loop arrival process itself observable.
    #[derive(Default)]
    struct ArrivalRecorder {
        arrivals: Vec<Timestamp>,
        clients: Vec<u64>,
        receipts: Vec<dichotomy_common::TxnReceipt>,
    }

    impl TransactionalSystem for ArrivalRecorder {
        fn kind(&self) -> dichotomy_systems::SystemKind {
            dichotomy_systems::SystemKind::Etcd
        }
        fn load(&mut self, _records: &[(dichotomy_common::Key, dichotomy_common::Value)]) {}
        fn submit(&mut self, txn: dichotomy_common::Transaction, arrival: Timestamp) {
            self.arrivals.push(arrival);
            self.clients.push(txn.id.client.0);
            self.receipts.push(dichotomy_common::TxnReceipt::committed(
                txn.id,
                arrival,
                arrival + 1,
            ));
        }
        fn flush(&mut self, _now: Timestamp) {}
        fn drain_receipts(&mut self) -> Vec<dichotomy_common::TxnReceipt> {
            std::mem::take(&mut self.receipts)
        }
        fn footprint(&self) -> dichotomy_common::size::StorageBreakdown {
            dichotomy_common::size::StorageBreakdown::default()
        }
        fn node_count(&self) -> usize {
            1
        }
    }

    fn record_arrivals(config: &DriverConfig) -> ArrivalRecorder {
        let mut recorder = ArrivalRecorder::default();
        let mut workload = small_ycsb(0.0);
        run_workload(&mut recorder, &mut workload, config);
        recorder
    }

    #[test]
    fn arrival_times_are_strictly_increasing() {
        let recorder = record_arrivals(&DriverConfig {
            transactions: 2_000,
            offered_tps: 10_000.0,
            ..DriverConfig::default()
        });
        assert_eq!(recorder.arrivals.len(), 2_000);
        assert!(
            recorder.arrivals.windows(2).all(|w| w[0] < w[1]),
            "open-loop arrivals must advance monotonically"
        );
    }

    #[test]
    fn mean_inter_arrival_gap_tracks_the_offered_load() {
        for offered_tps in [1_000.0, 25_000.0] {
            let recorder = record_arrivals(&DriverConfig {
                transactions: 8_000,
                offered_tps,
                ..DriverConfig::default()
            });
            let span = (recorder.arrivals.last().unwrap() - recorder.arrivals[0]) as f64;
            let observed_gap = span / (recorder.arrivals.len() - 1) as f64;
            let expected_gap = 1e6 / offered_tps;
            assert!(
                (observed_gap - expected_gap).abs() < expected_gap * 0.1,
                "offered {offered_tps} tps: observed mean gap {observed_gap:.1} µs, \
                 expected ≈{expected_gap:.1} µs"
            );
        }
    }

    #[test]
    fn arrivals_cycle_round_robin_across_the_configured_clients() {
        let clients = 8u64;
        let transactions = 401u64;
        let recorder = record_arrivals(&DriverConfig {
            transactions,
            clients,
            ..DriverConfig::default()
        });
        // The i-th submission comes from client i mod `clients`, as the
        // DriverConfig docs promise.
        for (i, client) in recorder.clients.iter().enumerate() {
            assert_eq!(*client, i as u64 % clients, "submission {i}");
        }
        // Every client id in [0, clients) appears, and the spread is even to
        // within one transaction.
        let mut counts = vec![0u64; clients as usize];
        for client in &recorder.clients {
            counts[*client as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "uneven spread: {counts:?}");
    }

    #[test]
    fn driver_seed_changes_the_arrival_jitter() {
        let arrivals =
            |seed: u64| record_arrivals(&DriverConfig::saturating(500).with_seed(seed)).arrivals;
        assert_eq!(arrivals(7), arrivals(7));
        assert_ne!(arrivals(7), arrivals(8));
    }

    #[test]
    fn same_seed_reproduces_identical_results() {
        let run = || {
            let mut system = Etcd::new(EtcdConfig::default());
            let mut workload = small_ycsb(0.6);
            run_workload(&mut system, &mut workload, &DriverConfig::saturating(300))
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics.committed, b.metrics.committed);
        assert_eq!(a.metrics.latency.p50_us, b.metrics.latency.p50_us);
        assert_eq!(a.makespan_us, b.makespan_us);
    }
}
