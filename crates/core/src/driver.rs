//! The benchmark driver: plays the role YCSB, OLTPBench and Caliper play in
//! the paper's setup (Section 4.2).
//!
//! The driver is an event loop on the shared simulation engine. Arrivals are
//! scheduled as events and interleave, on one clock, with the stage events
//! the system model schedules for itself — block cut timers, validation
//! completions, replication rounds. Backlog and saturation therefore emerge
//! from queueing on the model's service processes rather than from post-hoc
//! arithmetic.
//!
//! *How* arrivals are generated is data: an [`ArrivalSpec`] carried by
//! [`DriverConfig`] (mirroring how `SystemSpec`/`WorkloadSpec` describe the
//! system and the workload). The default is the paper's Section 5 open loop —
//! exponential inter-arrival gaps at a fixed offered rate — but closed-loop
//! client populations (think time + outstanding-request caps, fed by the
//! incremental completion channel every `TransactionalSystem` exposes),
//! phased load (ramps, steps, bursts) and mixed populations compose from the
//! same four variants. Every variant is seed-deterministic and emits
//! globally unique, hence strictly monotonically delivered, arrival times.

use std::collections::BTreeMap;

use dichotomy_common::rng::{self, Rng};
use dichotomy_common::{ClientId, Encode, Timestamp};
use dichotomy_systems::{Engine, SysEvent, TransactionalSystem};
use dichotomy_workload::Workload;

use crate::chaos::{OracleContext, OracleReport, OracleSet};
use crate::metrics::{Metrics, MetricsMode, StreamingAggregator, TimeSeries};

/// How the driver turns the clock into client submissions.
///
/// The spec is plan data (like `SystemSpec` and `WorkloadSpec`): cloneable,
/// comparable, and expanded into a [`ClientModel`] only inside
/// [`run_workload`]. Composition nests — a phase can hold a mixed
/// population, a population can be phased.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Open loop: Poisson arrivals at `offered_tps`, round-robin across the
    /// driver's `clients`, regardless of how the system keeps up. This is
    /// the historical driver behaviour, byte-identical for equal seeds.
    OpenLoop {
        /// Offered load in transactions per second of simulated time.
        offered_tps: f64,
    },
    /// Closed loop: `clients` independent clients, each keeping at most
    /// `max_outstanding` requests in flight and pausing an exponentially
    /// distributed think time (mean `think_time_us`, 0 = none) after each
    /// completion before submitting its next request. Throughput obeys
    /// Little's law: `tps ≈ clients / (think_time + mean latency)`.
    ClosedLoop {
        /// Number of closed-loop clients.
        clients: u64,
        /// Mean think time between a completion and the next submission (µs).
        think_time_us: u64,
        /// Maximum requests each client keeps in flight.
        max_outstanding: u64,
    },
    /// Load phases: each `(duration_us, spec)` runs in sequence (ramps,
    /// steps, bursts). The final phase is open-ended — it runs until the
    /// transaction budget is exhausted. An arrival a phase generates past
    /// its end is dropped and hands the timeline to the next phase at the
    /// boundary.
    Phased {
        /// The phases, in order.
        phases: Vec<(u64, ArrivalSpec)>,
    },
    /// Concurrent populations with disjoint client-id ranges. The weights
    /// apportion the run's transaction budget across the populations
    /// (largest-remainder rounding, ties to the earlier population).
    Mixed {
        /// `(weight, spec)` per population.
        populations: Vec<(f64, ArrivalSpec)>,
    },
}

impl ArrivalSpec {
    /// How many client ids the spec's populations occupy. Open loops draw
    /// on the driver-level `clients` knob; closed loops carry their own
    /// count; mixes stack their populations' ranges side by side.
    pub fn client_span(&self, driver_clients: u64) -> u64 {
        match self {
            ArrivalSpec::OpenLoop { .. } => driver_clients.max(1),
            ArrivalSpec::ClosedLoop { clients, .. } => (*clients).max(1),
            ArrivalSpec::Phased { phases } => phases
                .iter()
                .map(|(_, spec)| spec.client_span(driver_clients))
                .max()
                .unwrap_or(1),
            ArrivalSpec::Mixed { populations } => populations
                .iter()
                .map(|(_, spec)| spec.client_span(driver_clients))
                .sum::<u64>()
                .max(1),
        }
    }

    /// Expand the spec into its client model. `seed` is already
    /// driver-derived; children derive further (`phaseN` / `popN`) so
    /// sibling populations draw independent streams.
    fn build(&self, seed: u64, driver_clients: u64, budget: u64) -> Box<dyn ClientModel> {
        match self {
            ArrivalSpec::OpenLoop { offered_tps } => {
                Box::new(OpenLoopModel::new(seed, *offered_tps, driver_clients))
            }
            ArrivalSpec::ClosedLoop {
                clients,
                think_time_us,
                max_outstanding,
            } => Box::new(ClosedLoopModel::new(
                seed,
                *clients,
                *think_time_us,
                *max_outstanding,
            )),
            ArrivalSpec::Phased { phases } => {
                assert!(!phases.is_empty(), "Phased arrival spec with no phases");
                let mut cumulative: Timestamp = 0;
                let built = phases
                    .iter()
                    .enumerate()
                    .map(|(i, (duration_us, spec))| {
                        cumulative = cumulative.saturating_add((*duration_us).max(1));
                        // The final phase runs until the budget is spent.
                        let end = if i + 1 == phases.len() {
                            Timestamp::MAX
                        } else {
                            cumulative
                        };
                        let child_seed = rng::derive_seed(seed, &format!("phase{i}"));
                        (end, spec.build(child_seed, driver_clients, budget))
                    })
                    .collect();
                Box::new(PhasedModel {
                    phases: built,
                    active: 0,
                    active_start: 0,
                })
            }
            ArrivalSpec::Mixed { populations } => {
                assert!(
                    !populations.is_empty(),
                    "Mixed arrival spec with no populations"
                );
                let shares = mixed_shares(populations, budget);
                let mut base = 0u64;
                let pops = populations
                    .iter()
                    .zip(shares)
                    .enumerate()
                    .map(|(i, ((_, spec), share))| {
                        let span = spec.client_span(driver_clients);
                        let child_seed = rng::derive_seed(seed, &format!("pop{i}"));
                        let pop = Population {
                            model: spec.build(child_seed, driver_clients, share),
                            base,
                            span,
                            remaining: share,
                        };
                        base += span;
                        pop
                    })
                    .collect();
                Box::new(MixedModel { pops })
            }
        }
    }
}

/// Largest-remainder apportionment of a transaction `budget` across
/// [`ArrivalSpec::Mixed`] population weights: floor every quota, then hand
/// the leftover units to the largest fractional parts (ties to the earlier
/// population). Public because the plan linter (`repro lint`) reports
/// populations whose share rounds to zero — and the report is only sound if
/// the lint computes the exact shares the driver will execute.
pub fn mixed_shares(populations: &[(f64, ArrivalSpec)], budget: u64) -> Vec<u64> {
    let weight_sum: f64 = populations.iter().map(|(w, _)| w.max(0.0)).sum();
    let quotas: Vec<f64> = populations
        .iter()
        .map(|(w, _)| {
            let w = if weight_sum > 0.0 {
                w.max(0.0) / weight_sum
            } else {
                1.0 / populations.len() as f64
            };
            w * budget as f64
        })
        .collect();
    let mut shares: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
    let mut by_fraction: Vec<usize> = (0..quotas.len()).collect();
    by_fraction.sort_by(|&a, &b| {
        let (fa, fb) = (quotas[a].fract(), quotas[b].fract());
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut remainder = budget.saturating_sub(shares.iter().sum());
    for &i in &by_fraction {
        if remainder == 0 {
            break;
        }
        shares[i] += 1;
        remainder -= 1;
    }
    shares
}

/// The client-side half of the simulation: decides *when* each client
/// submits. Implementations emit `(client, timestamp)` pairs through the
/// `emit` sink; the driver turns each into a workload transaction, makes the
/// timestamp globally unique, and schedules the arrival event (dropping
/// emissions once the run's transaction budget is spent).
pub trait ClientModel {
    /// The run (or, under [`ArrivalSpec::Phased`], this model's phase)
    /// begins at `at`: emit the initial arrivals. An open loop emits its
    /// first arrival; a closed loop emits one arrival per client slot.
    fn start(&mut self, at: Timestamp, emit: &mut dyn FnMut(ClientId, Timestamp));

    /// The arrival previously emitted for `client` at `at` was dispatched
    /// into the system. Open-loop models emit the next arrival here.
    fn on_dispatch(
        &mut self,
        client: ClientId,
        at: Timestamp,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        let _ = (client, at, emit);
    }

    /// One of `client`'s transactions, submitted at `submitted`, finished —
    /// committed or aborted — at simulated time `finish`. Closed-loop models
    /// emit the next arrival at `finish + think_time` here; phased models
    /// use `submitted` to drop completions belonging to an earlier phase's
    /// population.
    fn on_completion(
        &mut self,
        client: ClientId,
        submitted: Timestamp,
        finish: Timestamp,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        let _ = (client, submitted, finish, emit);
    }
}

/// The open-loop arrival process: exponential inter-arrival gaps at the
/// offered rate, round-robin across clients, with a small per-arrival
/// jitter. Arrival timestamps are strictly monotonic — per client and across
/// clients — so event order never depends on heap tie-breaking.
struct OpenLoopModel {
    rng: rng::StdRng,
    mean_gap_us: f64,
    clients: u64,
    issued: u64,
    base: Timestamp,
    last_arrival: Timestamp,
}

impl OpenLoopModel {
    fn new(seed: u64, offered_tps: f64, clients: u64) -> Self {
        OpenLoopModel {
            rng: rng::seeded(seed),
            mean_gap_us: 1e6 / offered_tps.max(1e-6),
            clients: clients.max(1),
            issued: 0,
            base: 0,
            last_arrival: 0,
        }
    }

    fn next(&mut self) -> (ClientId, Timestamp) {
        let client_idx = self.issued % self.clients;
        self.issued += 1;
        // Exponential inter-arrival times approximate an open-loop Poisson
        // arrival process at the offered rate.
        self.base += rng::exp_delay_us(&mut self.rng, self.mean_gap_us).max(1);
        // Small per-arrival jitter so clients do not submit in lockstep. The
        // jitter does not accumulate into the base clock (it would bias the
        // offered rate), and the result is bumped past the previous arrival
        // so timestamps never tie — across clients included.
        let jitter = self.rng.gen_range(0..2u64);
        let at = (self.base + jitter).max(self.last_arrival + 1);
        self.last_arrival = at;
        (ClientId(client_idx), at)
    }
}

impl ClientModel for OpenLoopModel {
    fn start(&mut self, at: Timestamp, emit: &mut dyn FnMut(ClientId, Timestamp)) {
        self.base = at;
        self.last_arrival = at;
        let (client, t) = self.next();
        emit(client, t);
    }

    fn on_dispatch(
        &mut self,
        _client: ClientId,
        _at: Timestamp,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        // One arrival is scheduled ahead at a time; the driver drops
        // emissions beyond the transaction budget.
        let (client, t) = self.next();
        emit(client, t);
    }
}

/// The closed-loop client population: every completion of one of this
/// population's requests frees exactly one slot, which the owning client
/// reoccupies `think` later — so the per-client in-flight count never
/// exceeds `max_outstanding`. Think times are exponentially distributed
/// (mean `think_mean_us`); a zero mean submits immediately at the finish
/// time.
struct ClosedLoopModel {
    rng: rng::StdRng,
    clients: u64,
    think_mean_us: u64,
    max_outstanding: u64,
    /// Requests in flight per client: incremented per emission, decremented
    /// per completion. A completion that finds a client idle is foreign
    /// (not emitted by this population — its owner already dropped it) and
    /// must not trigger a submission.
    in_flight: Vec<u64>,
}

impl ClosedLoopModel {
    fn new(seed: u64, clients: u64, think_time_us: u64, max_outstanding: u64) -> Self {
        let clients = clients.max(1);
        ClosedLoopModel {
            rng: rng::seeded(seed),
            clients,
            think_mean_us: think_time_us,
            max_outstanding: max_outstanding.max(1),
            in_flight: vec![0; clients as usize],
        }
    }

    fn think(&mut self) -> u64 {
        if self.think_mean_us == 0 {
            0
        } else {
            rng::exp_delay_us(&mut self.rng, self.think_mean_us as f64)
        }
    }
}

impl ClientModel for ClosedLoopModel {
    fn start(&mut self, at: Timestamp, emit: &mut dyn FnMut(ClientId, Timestamp)) {
        // Fill every client's window: each slot opens after its own think
        // pause, so clients do not stampede the first microsecond.
        for _slot in 0..self.max_outstanding {
            for client in 0..self.clients {
                let t = at + self.think().max(1);
                self.in_flight[client as usize] += 1;
                emit(ClientId(client), t);
            }
        }
    }

    fn on_completion(
        &mut self,
        client: ClientId,
        _submitted: Timestamp,
        finish: Timestamp,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        match self.in_flight.get(client.0 as usize) {
            // Foreign completion (outside this population, or a client with
            // nothing of ours in flight): no slot frees up.
            None | Some(0) => return,
            Some(_) => {}
        }
        // The freed slot is reoccupied after the think pause, so the
        // in-flight count holds at its cap. Provenance filtering upstream —
        // client ranges in `Mixed`, submit-time in `Phased` — keeps other
        // populations' completions from ever reaching this point.
        let t = finish + self.think();
        emit(client, t);
    }
}

/// Sequential load phases. All child emissions funnel through
/// [`forward`](Self::forward): an emission that lands past the active
/// phase's end is dropped, and the next phase takes over at the boundary.
/// Each phase is its own population: completions of transactions submitted
/// before the active phase began (the previous population's backlog
/// draining) are dropped, never routed into the active model — otherwise a
/// closed-loop phase would mistake the leftovers for its own requests.
struct PhasedModel {
    /// `(exclusive end, model)` per phase; the final end is `Timestamp::MAX`.
    phases: Vec<(Timestamp, Box<dyn ClientModel>)>,
    active: usize,
    /// Inclusive start of the active phase (the previous phase's end, or
    /// the run start for phase 0).
    active_start: Timestamp,
}

impl PhasedModel {
    /// Forward buffered child emissions, advancing phases as emissions cross
    /// the active boundary (a hand-over calls the next phase's
    /// [`ClientModel::start`] at the boundary, whose own emissions join the
    /// queue — short phases may chain several hand-overs).
    fn forward(
        &mut self,
        buffered: Vec<(ClientId, Timestamp)>,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        let mut queue = std::collections::VecDeque::from(buffered);
        while let Some((client, t)) = queue.pop_front() {
            let end = self.phases[self.active].0;
            if t < end {
                emit(client, t);
                continue;
            }
            // Crossed the boundary: this emission is dropped, the next
            // phase starts where the active one ends.
            self.active += 1;
            self.active_start = end;
            let mut buf = Vec::new();
            self.phases[self.active]
                .1
                .start(end, &mut |c, t| buf.push((c, t)));
            queue.extend(buf);
        }
    }

    fn with_active(
        &mut self,
        f: impl FnOnce(&mut dyn ClientModel, &mut dyn FnMut(ClientId, Timestamp)),
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        let mut buf = Vec::new();
        f(self.phases[self.active].1.as_mut(), &mut |c, t| {
            buf.push((c, t))
        });
        self.forward(buf, emit);
    }
}

impl ClientModel for PhasedModel {
    fn start(&mut self, at: Timestamp, emit: &mut dyn FnMut(ClientId, Timestamp)) {
        self.active_start = at;
        self.with_active(|model, sink| model.start(at, sink), emit);
    }

    fn on_dispatch(
        &mut self,
        client: ClientId,
        at: Timestamp,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        self.with_active(|model, sink| model.on_dispatch(client, at, sink), emit);
    }

    fn on_completion(
        &mut self,
        client: ClientId,
        submitted: Timestamp,
        finish: Timestamp,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        if submitted < self.active_start {
            // A previous phase's transaction draining: its population
            // retired at the boundary.
            return;
        }
        self.with_active(
            |model, sink| model.on_completion(client, submitted, finish, sink),
            emit,
        );
    }
}

/// One population of a [`MixedModel`]: the child model plus its client-id
/// window and its share of the transaction budget.
struct Population {
    model: Box<dyn ClientModel>,
    base: u64,
    span: u64,
    remaining: u64,
}

/// Concurrent populations over disjoint client-id ranges. Dispatch and
/// completion callbacks route to the owning population (translated into its
/// local id space); emissions translate back and stop once the population's
/// budget share is spent.
struct MixedModel {
    pops: Vec<Population>,
}

impl MixedModel {
    fn route(&self, client: ClientId) -> Option<usize> {
        self.pops
            .iter()
            .position(|p| client.0 >= p.base && client.0 < p.base + p.span)
    }

    fn forward(
        &mut self,
        k: usize,
        buffered: Vec<(ClientId, Timestamp)>,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        let pop = &mut self.pops[k];
        for (client, t) in buffered {
            if pop.remaining == 0 {
                break;
            }
            pop.remaining -= 1;
            emit(ClientId(pop.base + client.0), t);
        }
    }
}

impl ClientModel for MixedModel {
    fn start(&mut self, at: Timestamp, emit: &mut dyn FnMut(ClientId, Timestamp)) {
        for k in 0..self.pops.len() {
            let mut buf = Vec::new();
            self.pops[k].model.start(at, &mut |c, t| buf.push((c, t)));
            self.forward(k, buf, emit);
        }
    }

    fn on_dispatch(
        &mut self,
        client: ClientId,
        at: Timestamp,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        let Some(k) = self.route(client) else { return };
        let local = ClientId(client.0 - self.pops[k].base);
        let mut buf = Vec::new();
        self.pops[k]
            .model
            .on_dispatch(local, at, &mut |c, t| buf.push((c, t)));
        self.forward(k, buf, emit);
    }

    fn on_completion(
        &mut self,
        client: ClientId,
        submitted: Timestamp,
        finish: Timestamp,
        emit: &mut dyn FnMut(ClientId, Timestamp),
    ) {
        let Some(k) = self.route(client) else { return };
        let local = ClientId(client.0 - self.pops[k].base);
        let mut buf = Vec::new();
        self.pops[k]
            .model
            .on_completion(local, submitted, finish, &mut |c, t| buf.push((c, t)));
        self.forward(k, buf, emit);
    }
}

/// Driver configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Number of transactions to issue.
    pub transactions: u64,
    /// Offered load in transactions per second of simulated time (the
    /// open-loop default; an explicit [`arrival`](Self::arrival) spec takes
    /// precedence).
    pub offered_tps: f64,
    /// Number of simulated clients the open loop spreads arrivals across.
    pub clients: u64,
    /// The arrival process. `None` is the historical open loop at
    /// [`offered_tps`](Self::offered_tps).
    pub arrival: Option<ArrivalSpec>,
    /// Whether to pre-load the workload's initial records (Figure 4/5 do;
    /// storage-size experiments load their own data).
    pub preload: bool,
    /// Width of the windowed time-series buckets (µs). `None` derives a
    /// window from the run's makespan (≈ 20 windows).
    pub window_us: Option<u64>,
    /// Receipts finishing before this simulated time are trimmed from the
    /// time series (warm-up).
    pub warmup_us: Timestamp,
    /// RNG seed for arrival jitter and think times.
    pub seed: u64,
    /// How receipts aggregate into metrics. [`MetricsMode::Exact`] (the
    /// default) retains every receipt and is byte-identical to the
    /// historical behaviour; [`MetricsMode::Streaming`] folds receipts into
    /// per-window sketches as they complete, making memory O(windows)
    /// instead of O(transactions).
    pub metrics: MetricsMode,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            transactions: 2_000,
            offered_tps: 50_000.0,
            clients: 32,
            arrival: None,
            preload: true,
            window_us: None,
            warmup_us: 0,
            seed: rng::DEFAULT_SEED,
            metrics: MetricsMode::Exact,
        }
    }
}

impl DriverConfig {
    /// A configuration that saturates any of the modelled systems (peak
    /// throughput measurement).
    pub fn saturating(transactions: u64) -> Self {
        DriverConfig {
            transactions,
            offered_tps: 200_000.0,
            ..DriverConfig::default()
        }
    }

    /// A light load for unsaturated latency measurements.
    pub fn unsaturated(transactions: u64) -> Self {
        DriverConfig {
            transactions,
            offered_tps: 50.0,
            ..DriverConfig::default()
        }
    }

    /// Replace the RNG seed. `saturating`/`unsaturated` keep the workspace
    /// default seed; experiment plans and `repro --seed` thread their seed
    /// through this so that runs are reproducible *per seed* rather than
    /// always identical.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fix the time-series window width.
    pub fn with_window(mut self, window_us: u64) -> Self {
        self.window_us = Some(window_us);
        self
    }

    /// Replace the arrival process.
    pub fn with_arrival(mut self, arrival: ArrivalSpec) -> Self {
        self.arrival = Some(arrival);
        self
    }

    /// The effective arrival spec: the explicit one, or the open-loop
    /// default at [`offered_tps`](Self::offered_tps).
    pub fn arrival_spec(&self) -> ArrivalSpec {
        self.arrival.clone().unwrap_or(ArrivalSpec::OpenLoop {
            offered_tps: self.offered_tps,
        })
    }
}

impl Encode for ArrivalSpec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            ArrivalSpec::OpenLoop { offered_tps } => {
                out.push(0);
                offered_tps.encode_into(out);
            }
            ArrivalSpec::ClosedLoop {
                clients,
                think_time_us,
                max_outstanding,
            } => {
                out.push(1);
                clients.encode_into(out);
                think_time_us.encode_into(out);
                max_outstanding.encode_into(out);
            }
            ArrivalSpec::Phased { phases } => {
                out.push(2);
                phases.encode_into(out);
            }
            ArrivalSpec::Mixed { populations } => {
                out.push(3);
                populations.encode_into(out);
            }
        }
    }
}

// A `DriverConfig` is one third of a probe's identity (alongside the system
// and workload specs): every knob that can change a measurement — arrival
// process, metrics mode, windowing, warm-up, seed — is in the canonical
// encoding the measurement layer hashes.
impl Encode for DriverConfig {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.transactions.encode_into(out);
        self.offered_tps.encode_into(out);
        self.clients.encode_into(out);
        self.arrival.encode_into(out);
        self.preload.encode_into(out);
        self.window_us.encode_into(out);
        self.warmup_us.encode_into(out);
        self.seed.encode_into(out);
        self.metrics.encode_into(out);
    }
}

/// The result of one driver run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Aggregated metrics.
    pub metrics: Metrics,
    /// Windowed time series of the same receipts (offered vs. achieved
    /// throughput, latency percentiles and abort rate per simulated-time
    /// window).
    pub series: TimeSeries,
    /// Simulated time of the last completion.
    pub makespan_us: Timestamp,
    /// Offered load used (open-loop configurations; closed loops offer
    /// whatever the completion stream sustains).
    pub offered_tps: f64,
    /// Arrivals the driver actually issued (equals the configured
    /// transaction count unless a closed loop starved before the budget).
    pub arrivals_issued: u64,
    /// Events the engine delivered during the run (arrivals + stages).
    pub events_delivered: u64,
    /// Events that were scheduled in the past and clamped to the engine
    /// clock. Nonzero values point at causality bugs in a system model
    /// (timestamp underflow); normal runs report 0.
    pub events_clamped: u64,
    /// Verdicts of the invariant oracles ([`crate::chaos`]) fed with every
    /// receipt the run surfaced.
    pub oracles: OracleReport,
}

/// The driver-side bookkeeping around a [`ClientModel`]: enforces the
/// transaction budget, assigns per-client sequence numbers, makes arrival
/// timestamps globally unique (bumping collisions forward by a microsecond),
/// and schedules the arrival events.
struct ArrivalBook {
    budget: u64,
    issued: u64,
    /// Per-client sequence counters as a flat slab indexed by client id. The
    /// spec's client span is known up front, so a million closed-loop
    /// clients cost one 8 MB vector instead of a million hash entries.
    seqs: Vec<u64>,
    used: TimestampLedger,
}

/// The set of already-claimed arrival timestamps, kept as coalesced
/// inclusive runs `[start, last]` rather than one hash entry per
/// microsecond. Arrival streams are dense (collisions bump forward one tick
/// at a time), so the runs merge aggressively: memory is O(gaps in the
/// schedule), not O(transactions).
#[derive(Default)]
struct TimestampLedger {
    runs: BTreeMap<Timestamp, Timestamp>,
}

impl TimestampLedger {
    /// Claim the first free microsecond at or after `at` and mark it used —
    /// exactly the `while !used.insert(t) { t += 1 }` bump the driver has
    /// always performed, resolved in one range lookup.
    fn claim(&mut self, at: Timestamp) -> Timestamp {
        let mut t = at;
        // The run at or before `at` decides where the claim lands: inside it
        // (first free tick is just past its end) or immediately after it
        // (extend). Runs are never adjacent, so `last + 1` is always free.
        let mut grow_left = None;
        if let Some((&start, &last)) = self.runs.range(..=at).next_back() {
            if at <= last {
                t = last + 1;
                grow_left = Some(start);
            } else if last + 1 == at {
                grow_left = Some(start);
            }
        }
        let grow_right = t
            .checked_add(1)
            .and_then(|next| self.runs.get(&next).copied());
        match (grow_left, grow_right) {
            (Some(start), Some(right_last)) => {
                self.runs.remove(&(t + 1));
                self.runs.insert(start, right_last);
            }
            (Some(start), None) => {
                self.runs.insert(start, t);
            }
            (None, Some(right_last)) => {
                self.runs.remove(&(t + 1));
                self.runs.insert(t, right_last);
            }
            (None, None) => {
                self.runs.insert(t, t);
            }
        }
        t
    }
}

impl ArrivalBook {
    fn new(budget: u64, client_span: u64) -> Self {
        ArrivalBook {
            budget,
            issued: 0,
            seqs: vec![0; client_span as usize],
            used: TimestampLedger::default(),
        }
    }

    fn emit(
        &mut self,
        client: ClientId,
        at: Timestamp,
        engine: &mut Engine,
        workload: &mut dyn Workload,
    ) {
        if self.issued >= self.budget {
            return;
        }
        self.issued += 1;
        // Unique timestamps make delivery order strictly monotonic in time:
        // no arrival interleaving is ever left to heap tie-breaking.
        let t = self.used.claim(at);
        let slot = client.0 as usize;
        if slot >= self.seqs.len() {
            // Client ids normally stay inside the spec's span; tolerate
            // models that hand out wider ids rather than indexing blind.
            self.seqs.resize(slot + 1, 0);
        }
        self.seqs[slot] += 1;
        let seq = self.seqs[slot];
        let mut txn = workload.next_transaction(client, seq);
        txn.submit_time = t;
        engine.schedule_at(t, SysEvent::Arrival(txn));
    }
}

/// Run `workload` against `system` under the given driver configuration.
///
/// The event loop: the client model seeds its initial arrivals, events
/// dispatch in `(time, seq)` order — arrivals and stage events to the
/// system — and after every event the system's incremental completion
/// channel is polled so the model can react (open loops schedule their next
/// arrival per dispatch; closed loops per completion). The queue then
/// drains and the receipts aggregate.
pub fn run_workload(
    system: &mut dyn TransactionalSystem,
    workload: &mut dyn Workload,
    config: &DriverConfig,
) -> RunStats {
    if config.preload {
        let records = workload.initial_records();
        system.load(&records);
    }
    let mut engine = Engine::new();
    system.attach(&mut engine);

    let mut model = config.arrival_spec().build(
        rng::derive_seed(config.seed, "driver"),
        config.clients.max(1),
        config.transactions,
    );
    let mut book = ArrivalBook::new(
        config.transactions,
        config.arrival_spec().client_span(config.clients.max(1)),
    );
    model.start(0, &mut |c, t| book.emit(c, t, &mut engine, workload));
    // One completions buffer for the whole run: each poll swap-drains the
    // system's internal vector into it (and hands the drained allocation
    // back), so the hot loop never allocates per event.
    let mut completions = Vec::new();
    // Streaming mode folds receipts into the aggregator as they complete,
    // through one reused receipt buffer, so the system never accumulates an
    // O(transactions) receipt vector. `window_us` cannot be derived from the
    // makespan up front, so an unset width defaults to one simulated second.
    let mut streaming = match config.metrics {
        MetricsMode::Exact => None,
        MetricsMode::Streaming => Some((
            StreamingAggregator::new(config.window_us.unwrap_or(1_000_000), config.warmup_us),
            Vec::new(),
        )),
    };
    // The invariant oracles see every receipt the run surfaces, in surfacing
    // order, regardless of metrics mode.
    let mut oracles = OracleSet::standard();
    loop {
        while let Some((_, event)) = engine.pop() {
            match event {
                SysEvent::Arrival(txn) => {
                    let client = txn.id.client;
                    let at = txn.submit_time;
                    system.on_arrival(txn, &mut engine);
                    model.on_dispatch(client, at, &mut |c, t| {
                        book.emit(c, t, &mut engine, workload)
                    });
                }
                SysEvent::Stage(stage) => system.on_stage(stage, &mut engine),
            }
            system.drain_completions(&mut completions);
            for completion in completions.drain(..) {
                model.on_completion(
                    completion.client,
                    completion.submitted,
                    completion.finish,
                    &mut |c, t| book.emit(c, t, &mut engine, workload),
                );
            }
            if let Some((agg, rbuf)) = streaming.as_mut() {
                system.drain_receipts_into(rbuf);
                for r in rbuf.drain(..) {
                    oracles.observe(&r);
                    agg.observe(&r);
                }
            }
        }
        system.on_drain(&mut engine);
        system.drain_completions(&mut completions);
        for completion in completions.drain(..) {
            model.on_completion(
                completion.client,
                completion.submitted,
                completion.finish,
                &mut |c, t| book.emit(c, t, &mut engine, workload),
            );
        }
        if engine.is_empty() {
            break;
        }
    }

    let (metrics, series, makespan_us) = match streaming {
        Some((mut agg, mut rbuf)) => {
            system.drain_receipts_into(&mut rbuf);
            for r in rbuf.drain(..) {
                oracles.observe(&r);
                agg.observe(&r);
            }
            agg.finish(engine.now())
        }
        None => {
            let receipts = system.drain_receipts();
            oracles.observe_all(&receipts);
            let metrics = Metrics::from_receipts(&receipts);
            let makespan_us = receipts
                .iter()
                .map(|r| r.finish_time)
                .max()
                .unwrap_or(engine.now());
            let window_us = config.window_us.unwrap_or((makespan_us / 20).max(1));
            let series = TimeSeries::from_receipts(&receipts, window_us, config.warmup_us);
            (metrics, series, makespan_us)
        }
    };
    let oracles = oracles.finish(OracleContext {
        arrivals_issued: book.issued,
        events_clamped: engine.clamped(),
    });
    RunStats {
        metrics,
        series,
        makespan_us,
        offered_tps: config.offered_tps,
        arrivals_issued: book.issued,
        events_delivered: engine.delivered(),
        events_clamped: engine.clamped(),
        oracles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::TxnReceipt;
    use dichotomy_systems::{Completion, Etcd, EtcdConfig, Quorum, QuorumConfig, ReceiptLog};
    use dichotomy_workload::{YcsbConfig, YcsbWorkload};

    fn small_ycsb(theta: f64) -> YcsbWorkload {
        YcsbWorkload::new(YcsbConfig {
            record_count: 1_000,
            record_size: 200,
            zipf_theta: theta,
            ..YcsbConfig::default()
        })
    }

    #[test]
    fn saturating_run_reports_positive_throughput_and_latency() {
        let mut system = Etcd::new(EtcdConfig::default());
        let mut workload = small_ycsb(0.0);
        let stats = run_workload(&mut system, &mut workload, &DriverConfig::saturating(500));
        assert_eq!(stats.metrics.committed, 500);
        assert_eq!(stats.arrivals_issued, 500);
        assert!(stats.metrics.throughput_tps > 100.0);
        assert!(stats.metrics.latency.p95_us > 0);
        assert!(stats.makespan_us > 0);
        // Every arrival plus at least one stage event per write.
        assert!(stats.events_delivered > 500);
        assert_eq!(stats.events_clamped, 0, "no causality violations");
    }

    #[test]
    fn no_model_schedules_events_into_the_past() {
        // Drive every registered system kind through the event loop and
        // check the engine's clamp counter: a nonzero value means a model
        // scheduled a stage event before the current simulated time.
        use dichotomy_systems::{SystemKind, SystemSpec};
        for kind in SystemKind::ALL {
            let mut system = SystemSpec::new(kind).build().expect("builtin model");
            let mut workload = small_ycsb(0.4);
            let stats = run_workload(
                system.as_mut(),
                &mut workload,
                &DriverConfig::saturating(200),
            );
            assert_eq!(stats.events_clamped, 0, "{kind:?} clamped events");
        }
    }

    #[test]
    fn unsaturated_latency_is_lower_than_saturated_latency() {
        let build = || {
            Quorum::new(QuorumConfig {
                max_block_txns: 20,
                block_interval_us: 50_000,
                ..QuorumConfig::default()
            })
        };
        let mut saturated_sys = build();
        let saturated = run_workload(
            &mut saturated_sys,
            &mut small_ycsb(0.0),
            &DriverConfig::saturating(300),
        );
        let mut unsaturated_sys = build();
        let unsaturated = run_workload(
            &mut unsaturated_sys,
            &mut small_ycsb(0.0),
            &DriverConfig {
                transactions: 50,
                offered_tps: 20.0,
                ..DriverConfig::default()
            },
        );
        assert!(
            unsaturated.metrics.latency.mean_us < saturated.metrics.latency.mean_us,
            "unsaturated {} vs saturated {}",
            unsaturated.metrics.latency.mean_us,
            saturated.metrics.latency.mean_us
        );
    }

    #[test]
    fn saturating_runs_produce_a_backlog_shaped_time_series() {
        // Offer far more load than Quorum's serial pipeline absorbs: the
        // windowed latency (queueing delay) climbs across the run.
        let mut system = Quorum::new(QuorumConfig {
            max_block_txns: 50,
            block_interval_us: 50_000,
            ..QuorumConfig::default()
        });
        let stats = run_workload(
            &mut system,
            &mut small_ycsb(0.0),
            &DriverConfig::saturating(600),
        );
        let busy: Vec<_> = stats
            .series
            .windows
            .iter()
            .filter(|w| w.committed > 0)
            .collect();
        assert!(busy.len() >= 3, "expected several busy windows");
        let first = busy.first().unwrap();
        let last = busy.last().unwrap();
        assert!(
            last.latency.p50_us > first.latency.p50_us * 2,
            "backlog should inflate windowed latency: first p50 {} last p50 {}",
            first.latency.p50_us,
            last.latency.p50_us
        );
    }

    /// Records what the driver submits, completing everything `latency_us`
    /// later through the real completion channel: makes every arrival
    /// process directly observable.
    struct ArrivalRecorder {
        arrivals: Vec<Timestamp>,
        clients: Vec<u64>,
        latency_us: u64,
        receipts: ReceiptLog,
    }

    impl Default for ArrivalRecorder {
        fn default() -> Self {
            ArrivalRecorder {
                arrivals: Vec::new(),
                clients: Vec::new(),
                latency_us: 1,
                receipts: ReceiptLog::new(),
            }
        }
    }

    impl TransactionalSystem for ArrivalRecorder {
        fn kind(&self) -> dichotomy_systems::SystemKind {
            dichotomy_systems::SystemKind::Etcd
        }
        fn load(&mut self, _records: &[(dichotomy_common::Key, dichotomy_common::Value)]) {}
        fn on_arrival(&mut self, txn: dichotomy_common::Transaction, engine: &mut Engine) {
            let arrival = engine.now();
            self.arrivals.push(arrival);
            self.clients.push(txn.id.client.0);
            self.receipts
                .push_back(dichotomy_common::TxnReceipt::committed(
                    txn.id,
                    arrival,
                    arrival + self.latency_us,
                ));
        }
        fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
            self.receipts.drain()
        }
        fn take_completions(&mut self) -> Vec<Completion> {
            self.receipts.take_completions()
        }
        fn footprint(&self) -> dichotomy_common::size::StorageBreakdown {
            dichotomy_common::size::StorageBreakdown::default()
        }
        fn node_count(&self) -> usize {
            1
        }
    }

    fn record_arrivals(config: &DriverConfig) -> ArrivalRecorder {
        let mut recorder = ArrivalRecorder::default();
        let mut workload = small_ycsb(0.0);
        run_workload(&mut recorder, &mut workload, config);
        recorder
    }

    #[test]
    fn arrival_times_are_strictly_increasing() {
        let recorder = record_arrivals(&DriverConfig {
            transactions: 2_000,
            offered_tps: 10_000.0,
            ..DriverConfig::default()
        });
        assert_eq!(recorder.arrivals.len(), 2_000);
        assert!(
            recorder.arrivals.windows(2).all(|w| w[0] < w[1]),
            "open-loop arrivals must advance monotonically"
        );
    }

    #[test]
    fn arrivals_never_tie_even_at_extreme_offered_load() {
        // Regression for the per-client jitter: at a mean gap of ~1 µs the
        // old cumulative jitter let two clients submit at the same µs tick,
        // leaving the interleaving to heap tie-breaking. Arrivals must be
        // strictly monotonic globally (hence per client too) and identical
        // across equal-seed runs.
        let config = DriverConfig {
            transactions: 5_000,
            offered_tps: 1_000_000.0,
            ..DriverConfig::default()
        };
        let a = record_arrivals(&config);
        assert!(
            a.arrivals.windows(2).all(|w| w[0] < w[1]),
            "global strict monotonicity"
        );
        for client in 0..config.clients {
            let per_client: Vec<_> = a
                .arrivals
                .iter()
                .zip(&a.clients)
                .filter(|(_, c)| **c == client)
                .map(|(t, _)| *t)
                .collect();
            assert!(
                per_client.windows(2).all(|w| w[0] < w[1]),
                "client {client} arrivals must be strictly monotonic"
            );
        }
        let b = record_arrivals(&config);
        assert_eq!(a.arrivals, b.arrivals, "same seed, same schedule");
    }

    #[test]
    fn mean_inter_arrival_gap_tracks_the_offered_load() {
        for offered_tps in [1_000.0, 25_000.0] {
            let recorder = record_arrivals(&DriverConfig {
                transactions: 8_000,
                offered_tps,
                ..DriverConfig::default()
            });
            let span = (recorder.arrivals.last().unwrap() - recorder.arrivals[0]) as f64;
            let observed_gap = span / (recorder.arrivals.len() - 1) as f64;
            let expected_gap = 1e6 / offered_tps;
            assert!(
                (observed_gap - expected_gap).abs() < expected_gap * 0.1,
                "offered {offered_tps} tps: observed mean gap {observed_gap:.1} µs, \
                 expected ≈{expected_gap:.1} µs"
            );
        }
    }

    #[test]
    fn arrivals_cycle_round_robin_across_the_configured_clients() {
        let clients = 8u64;
        let transactions = 401u64;
        let recorder = record_arrivals(&DriverConfig {
            transactions,
            clients,
            ..DriverConfig::default()
        });
        // The i-th submission comes from client i mod `clients`, as the
        // DriverConfig docs promise.
        for (i, client) in recorder.clients.iter().enumerate() {
            assert_eq!(*client, i as u64 % clients, "submission {i}");
        }
        // Every client id in [0, clients) appears, and the spread is even to
        // within one transaction.
        let mut counts = vec![0u64; clients as usize];
        for client in &recorder.clients {
            counts[*client as usize] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        assert!(max - min <= 1, "uneven spread: {counts:?}");
    }

    #[test]
    fn driver_seed_changes_the_arrival_jitter() {
        let arrivals =
            |seed: u64| record_arrivals(&DriverConfig::saturating(500).with_seed(seed)).arrivals;
        assert_eq!(arrivals(7), arrivals(7));
        assert_ne!(arrivals(7), arrivals(8));
    }

    #[test]
    fn streaming_metrics_mode_matches_exact_counts_and_shape() {
        // The same seeded run under both metrics modes: the simulation is
        // identical (arrivals, events, makespan), exact-valued aggregates
        // (counts, means, maxima, window boundaries) agree exactly, and the
        // sketched percentiles land within the documented bounds.
        let run = |metrics| {
            let mut system = Etcd::new(EtcdConfig::default());
            let mut workload = small_ycsb(0.6);
            let config = DriverConfig {
                window_us: Some(20_000),
                metrics,
                ..DriverConfig::saturating(300)
            };
            run_workload(&mut system, &mut workload, &config)
        };
        let exact = run(MetricsMode::Exact);
        let streamed = run(MetricsMode::Streaming);
        assert_eq!(streamed.arrivals_issued, exact.arrivals_issued);
        assert_eq!(streamed.events_delivered, exact.events_delivered);
        assert_eq!(streamed.makespan_us, exact.makespan_us);
        assert_eq!(streamed.metrics.committed, exact.metrics.committed);
        assert_eq!(streamed.metrics.aborts, exact.metrics.aborts);
        assert_eq!(streamed.metrics.duration_us, exact.metrics.duration_us);
        assert_eq!(
            streamed.metrics.latency.max_us,
            exact.metrics.latency.max_us
        );
        assert!(
            (streamed.metrics.latency.mean_us - exact.metrics.latency.mean_us).abs() < 1e-6,
            "means are exact in both modes"
        );
        let (p50s, p50e) = (
            streamed.metrics.latency.p50_us as f64,
            exact.metrics.latency.p50_us as f64,
        );
        assert!(
            (p50s - p50e).abs() <= (0.10 * p50e).max(1.0),
            "sketched p50 {p50s} strays from exact {p50e}"
        );
        assert_eq!(streamed.series.windows.len(), exact.series.windows.len());
        for (s, e) in streamed.series.windows.iter().zip(&exact.series.windows) {
            assert_eq!((s.start_us, s.end_us), (e.start_us, e.end_us));
            assert_eq!(s.submitted, e.submitted);
            assert_eq!(s.committed, e.committed);
            assert_eq!(s.aborted, e.aborted);
        }
    }

    #[test]
    fn same_seed_reproduces_identical_results() {
        let run = || {
            let mut system = Etcd::new(EtcdConfig::default());
            let mut workload = small_ycsb(0.6);
            run_workload(&mut system, &mut workload, &DriverConfig::saturating(300))
        };
        let a = run();
        let b = run();
        assert_eq!(a.metrics.committed, b.metrics.committed);
        assert_eq!(a.metrics.latency.p50_us, b.metrics.latency.p50_us);
        assert_eq!(a.makespan_us, b.makespan_us);
        assert_eq!(a.events_delivered, b.events_delivered);
        assert_eq!(a.series, b.series);
    }

    #[test]
    fn open_loop_spec_matches_the_legacy_arrival_process_exactly() {
        // Three-way byte-identity pin for the refactor: (a) the implicit
        // open-loop default, (b) an explicit `ArrivalSpec::OpenLoop`, and
        // (c) an inline replay of the pre-refactor arrival arithmetic must
        // produce the same schedule, microsecond for microsecond.
        let config = DriverConfig {
            transactions: 1_000,
            offered_tps: 30_000.0,
            seed: 99,
            ..DriverConfig::default()
        };
        let implicit = record_arrivals(&config);
        let explicit = record_arrivals(&config.clone().with_arrival(ArrivalSpec::OpenLoop {
            offered_tps: 30_000.0,
        }));
        assert_eq!(implicit.arrivals, explicit.arrivals);
        assert_eq!(implicit.clients, explicit.clients);

        // The legacy `ArrivalProcess` arithmetic, replayed inline.
        let mut rng = rng::seeded(rng::derive_seed(config.seed, "driver"));
        let mean_gap_us = 1e6 / config.offered_tps;
        let (mut base, mut last) = (0u64, 0u64);
        let legacy: Vec<Timestamp> = (0..config.transactions)
            .map(|_| {
                base += rng::exp_delay_us(&mut rng, mean_gap_us).max(1);
                let jitter = rng.gen_range(0..2u64);
                let at = (base + jitter).max(last + 1);
                last = at;
                at
            })
            .collect();
        assert_eq!(implicit.arrivals, legacy);
    }

    #[test]
    fn closed_loop_waits_for_completion_plus_think_time() {
        // One request in flight per client and a fixed service latency: each
        // client's next arrival cannot predate its previous completion.
        let latency_us = 700u64;
        let mut recorder = ArrivalRecorder {
            latency_us,
            ..ArrivalRecorder::default()
        };
        let config = DriverConfig {
            transactions: 400,
            arrival: Some(ArrivalSpec::ClosedLoop {
                clients: 4,
                think_time_us: 300,
                max_outstanding: 1,
            }),
            ..DriverConfig::default()
        };
        run_workload(&mut recorder, &mut small_ycsb(0.0), &config);
        assert_eq!(recorder.arrivals.len(), 400, "budget fully issued");
        for client in 0..4u64 {
            let per_client: Vec<_> = recorder
                .arrivals
                .iter()
                .zip(&recorder.clients)
                .filter(|(_, c)| **c == client)
                .map(|(t, _)| *t)
                .collect();
            assert!(per_client.len() > 50, "client {client} starved");
            for pair in per_client.windows(2) {
                assert!(
                    pair[1] >= pair[0] + latency_us,
                    "client {client}: arrival {} predates completion of {}",
                    pair[1],
                    pair[0]
                );
            }
        }
    }

    /// Completes each transaction through a stage event `service_us` after
    /// arrival, so in-flight windows are real intervals on the engine clock.
    struct StagedRecorder {
        service_us: u64,
        /// (client, arrival, finish) per transaction, finish filled at the
        /// completion stage.
        spans: Vec<(u64, Timestamp, Timestamp)>,
        receipts: ReceiptLog,
        pending: Vec<dichotomy_common::TxnId>,
    }

    impl TransactionalSystem for StagedRecorder {
        fn kind(&self) -> dichotomy_systems::SystemKind {
            dichotomy_systems::SystemKind::Etcd
        }
        fn load(&mut self, _records: &[(dichotomy_common::Key, dichotomy_common::Value)]) {}
        fn on_arrival(&mut self, txn: dichotomy_common::Transaction, engine: &mut Engine) {
            let token = self.pending.len() as u64;
            self.spans.push((txn.id.client.0, engine.now(), 0));
            self.pending.push(txn.id);
            engine.schedule_at(engine.now() + self.service_us, SysEvent::stage(0, token));
        }
        fn on_stage(&mut self, event: dichotomy_simnet::StageEvent, engine: &mut Engine) {
            let id = self.pending[event.token as usize];
            let span = &mut self.spans[event.token as usize];
            span.2 = engine.now();
            self.receipts
                .push_back(TxnReceipt::committed(id, span.1, engine.now()));
        }
        fn drain_receipts(&mut self) -> Vec<TxnReceipt> {
            self.receipts.drain()
        }
        fn take_completions(&mut self) -> Vec<Completion> {
            self.receipts.take_completions()
        }
        fn footprint(&self) -> dichotomy_common::size::StorageBreakdown {
            dichotomy_common::size::StorageBreakdown::default()
        }
        fn node_count(&self) -> usize {
            1
        }
    }

    #[test]
    fn closed_loop_outstanding_cap_is_never_exceeded_and_is_reached() {
        let (clients, cap) = (3u64, 4u64);
        let mut recorder = StagedRecorder {
            service_us: 5_000,
            spans: Vec::new(),
            receipts: ReceiptLog::new(),
            pending: Vec::new(),
        };
        let config = DriverConfig {
            transactions: 600,
            arrival: Some(ArrivalSpec::ClosedLoop {
                clients,
                think_time_us: 200,
                max_outstanding: cap,
            }),
            ..DriverConfig::default()
        };
        run_workload(&mut recorder, &mut small_ycsb(0.0), &config);
        assert_eq!(recorder.spans.len(), 600);
        assert!(recorder.spans.iter().all(|(_, _, f)| *f > 0));
        // Recorder-based cap check: per client, count overlapping
        // [arrival, finish) spans at every arrival instant.
        let mut overall_max = 0u64;
        for client in 0..clients {
            let spans: Vec<_> = recorder
                .spans
                .iter()
                .filter(|(c, _, _)| *c == client)
                .map(|(_, a, f)| (*a, *f))
                .collect();
            let max_in_flight = spans
                .iter()
                .map(|(a, _)| spans.iter().filter(|(a2, f2)| a2 <= a && a < f2).count() as u64)
                .max()
                .unwrap_or(0);
            assert!(
                max_in_flight <= cap,
                "client {client} had {max_in_flight} > cap {cap} in flight"
            );
            overall_max = overall_max.max(max_in_flight);
        }
        assert_eq!(
            overall_max, cap,
            "with service ≫ think the cap should bind for some client"
        );
    }

    fn variant_specs() -> Vec<(&'static str, ArrivalSpec)> {
        vec![
            (
                "open",
                ArrivalSpec::OpenLoop {
                    offered_tps: 20_000.0,
                },
            ),
            (
                "closed",
                ArrivalSpec::ClosedLoop {
                    clients: 6,
                    think_time_us: 400,
                    max_outstanding: 2,
                },
            ),
            (
                "phased",
                ArrivalSpec::Phased {
                    phases: vec![
                        (
                            30_000,
                            ArrivalSpec::OpenLoop {
                                offered_tps: 2_000.0,
                            },
                        ),
                        (
                            30_000,
                            ArrivalSpec::OpenLoop {
                                offered_tps: 20_000.0,
                            },
                        ),
                    ],
                },
            ),
            (
                "mixed",
                ArrivalSpec::Mixed {
                    populations: vec![
                        (
                            3.0,
                            ArrivalSpec::OpenLoop {
                                offered_tps: 10_000.0,
                            },
                        ),
                        (
                            1.0,
                            ArrivalSpec::ClosedLoop {
                                clients: 2,
                                think_time_us: 250,
                                max_outstanding: 1,
                            },
                        ),
                    ],
                },
            ),
        ]
    }

    #[test]
    fn every_variant_is_seed_deterministic_and_seed_sensitive() {
        for (name, spec) in variant_specs() {
            let run = |seed: u64| {
                let config = DriverConfig {
                    transactions: 600,
                    seed,
                    arrival: Some(spec.clone()),
                    ..DriverConfig::default()
                };
                let r = record_arrivals(&config);
                (r.arrivals, r.clients)
            };
            assert_eq!(run(7), run(7), "{name}: same seed must reproduce");
            assert_ne!(run(7), run(8), "{name}: different seed must differ");
        }
    }

    #[test]
    fn every_variant_delivers_strictly_monotonic_unique_arrivals() {
        for (name, spec) in variant_specs() {
            let config = DriverConfig {
                transactions: 600,
                arrival: Some(spec),
                ..DriverConfig::default()
            };
            let r = record_arrivals(&config);
            assert_eq!(r.arrivals.len(), 600, "{name}: full budget issued");
            assert!(
                r.arrivals.windows(2).all(|w| w[0] < w[1]),
                "{name}: delivery-order arrival times must strictly increase"
            );
        }
    }

    #[test]
    fn phased_ramp_shifts_the_offered_rate_at_the_boundary() {
        let boundary = 100_000u64;
        let config = DriverConfig {
            transactions: 1_100,
            arrival: Some(ArrivalSpec::Phased {
                phases: vec![
                    (
                        boundary,
                        ArrivalSpec::OpenLoop {
                            offered_tps: 1_000.0,
                        },
                    ),
                    (
                        boundary,
                        ArrivalSpec::OpenLoop {
                            offered_tps: 10_000.0,
                        },
                    ),
                ],
            }),
            ..DriverConfig::default()
        };
        let r = record_arrivals(&config);
        let phase1 = r.arrivals.iter().filter(|t| **t < boundary).count();
        let phase2 = r
            .arrivals
            .iter()
            .filter(|t| **t >= boundary && **t < 2 * boundary)
            .count();
        // ≈ 100 arrivals in the slow phase, ≈ 1 000 in the fast one.
        assert!(
            (60..=140).contains(&phase1),
            "phase 1 carried {phase1} arrivals"
        );
        assert!(phase2 >= 700, "phase 2 carried {phase2} arrivals");
        assert!(
            phase2 > phase1 * 5,
            "the ramp must be visible: {phase1} vs {phase2}"
        );
    }

    #[test]
    fn a_closed_loop_phase_ignores_the_previous_phases_draining_backlog() {
        // Regression: an open-loop burst phase hands over to a closed-loop
        // phase while the slow system still holds the burst's backlog. The
        // backlog's completions were submitted before the closed phase began
        // and belong to a retired population — they must not trigger
        // closed-loop submissions, or the outstanding cap breaks.
        let boundary = 20_000u64;
        let (clients, cap) = (2u64, 1u64);
        let mut recorder = StagedRecorder {
            service_us: 50_000,
            spans: Vec::new(),
            receipts: ReceiptLog::new(),
            pending: Vec::new(),
        };
        let config = DriverConfig {
            transactions: 150,
            arrival: Some(ArrivalSpec::Phased {
                phases: vec![
                    (
                        boundary,
                        ArrivalSpec::OpenLoop {
                            offered_tps: 5_000.0,
                        },
                    ),
                    (
                        boundary,
                        ArrivalSpec::ClosedLoop {
                            clients,
                            think_time_us: 0,
                            max_outstanding: cap,
                        },
                    ),
                ],
            }),
            ..DriverConfig::default()
        };
        run_workload(&mut recorder, &mut small_ycsb(0.0), &config);
        // Everything submitted from the boundary on comes from the closed
        // population: its two clients only, never more than `cap` in flight.
        let phase2: Vec<_> = recorder
            .spans
            .iter()
            .filter(|(_, a, _)| *a >= boundary)
            .collect();
        assert!(phase2.len() > 10, "the closed phase must actually run");
        for (client, _, _) in &phase2 {
            assert!(
                *client < clients,
                "client {client} outside the closed population"
            );
        }
        for client in 0..clients {
            let spans: Vec<_> = phase2
                .iter()
                .filter(|(c, _, _)| *c == client)
                .map(|(_, a, f)| (*a, *f))
                .collect();
            let max_in_flight = spans
                .iter()
                .map(|(a, _)| spans.iter().filter(|(a2, f2)| a2 <= a && a < f2).count() as u64)
                .max()
                .unwrap_or(0);
            assert!(
                max_in_flight <= cap,
                "client {client}: the burst backlog inflated the closed loop \
                 to {max_in_flight} > cap {cap} in flight"
            );
        }
    }

    #[test]
    fn mixed_budget_shares_use_largest_remainder_rounding() {
        // Weights 1:2 over a 4-transaction budget: quotas 1.33 / 2.67 floor
        // to [1, 2]; the leftover unit goes to the LARGER fraction → [1, 3]
        // (first-come rounding would mis-apportion it as [2, 2]).
        let config = DriverConfig {
            transactions: 4,
            clients: 4,
            arrival: Some(ArrivalSpec::Mixed {
                populations: vec![
                    (
                        1.0,
                        ArrivalSpec::OpenLoop {
                            offered_tps: 10_000.0,
                        },
                    ),
                    (
                        2.0,
                        ArrivalSpec::OpenLoop {
                            offered_tps: 10_000.0,
                        },
                    ),
                ],
            }),
            ..DriverConfig::default()
        };
        let r = record_arrivals(&config);
        let pop0 = r.clients.iter().filter(|c| **c < 4).count();
        let pop1 = r.clients.iter().filter(|c| **c >= 4).count();
        assert_eq!((pop0, pop1), (1, 3), "largest remainder wins the leftover");
    }

    #[test]
    fn mixed_populations_split_budget_by_weight_over_disjoint_client_ranges() {
        let driver_clients = 8u64;
        let config = DriverConfig {
            transactions: 400,
            clients: driver_clients,
            arrival: Some(ArrivalSpec::Mixed {
                populations: vec![
                    (
                        3.0,
                        ArrivalSpec::OpenLoop {
                            offered_tps: 50_000.0,
                        },
                    ),
                    (
                        1.0,
                        ArrivalSpec::ClosedLoop {
                            clients: 2,
                            think_time_us: 100,
                            max_outstanding: 1,
                        },
                    ),
                ],
            }),
            ..DriverConfig::default()
        };
        let r = record_arrivals(&config);
        // Population 0 (open loop) owns clients [0, 8); population 1 (closed
        // loop) owns [8, 10).
        let open = r.clients.iter().filter(|c| **c < driver_clients).count();
        let closed = r
            .clients
            .iter()
            .filter(|c| (driver_clients..driver_clients + 2).contains(*c))
            .count();
        assert_eq!(open + closed, 400, "no clients outside the two ranges");
        assert_eq!(open, 300, "3:1 weights over a 400-txn budget");
        assert_eq!(closed, 100);
    }
}
