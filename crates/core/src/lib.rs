//! The facade crate of the *Blockchains vs. Distributed Databases: Dichotomy
//! and Fusion* reproduction.
//!
//! It re-exports the substrate and system crates, and adds the three pieces
//! the experiments need:
//!
//! * [`metrics`] — turning a pile of [`TxnReceipt`](dichotomy_common::TxnReceipt)s
//!   into throughput, latency percentiles, abort-rate breakdowns and
//!   per-phase averages;
//! * [`driver`] — the benchmark driver that feeds a workload into a system
//!   model at a chosen offered load and collects the receipts (the role YCSB,
//!   OLTPBench and Caliper play in the paper's setup);
//! * [`scenario`] — the Scenario API: experiments as data. A
//!   [`scenario::Scenario`] composes `SystemSpec`s, a `WorkloadSpec`, a
//!   `DriverConfig` and a `Sweep` into an [`scenario::ExperimentPlan`], and
//!   one generic engine ([`scenario::run_plan`]) executes any plan;
//! * [`experiments`] — one *plan constructor* per table/figure of the
//!   paper's evaluation section, each a thin description executed by
//!   `run_plan` (these are what the `dichotomy-bench` binaries call);
//! * [`chaos`] — invariant oracles checked over every probe's receipt
//!   stream (receipt conservation, duplicate detection, commit-order
//!   monotonicity, clamp-free queueing), the correctness half of the
//!   fault-injection chaos engine.

pub mod chaos;
pub mod driver;
pub mod experiments;
pub mod lint;
pub mod metrics;
pub mod scenario;

pub use chaos::{InvariantOracle, OracleContext, OracleOutcome, OracleReport, OracleSet};
pub use driver::{run_workload, ArrivalSpec, ClientModel, DriverConfig, RunStats};
pub use lint::{lint_plan, lint_scenario};
pub use metrics::{
    LatencySummary, Metrics, MetricsMode, P2Quantile, StreamingAggregator, StreamingLatency,
    TimeSeries, TimeWindow,
};
pub use scenario::{
    fnv1a_64, lpt_order, predicted_probe_cost, probe_key_bytes, run_plan, run_plan_with,
    run_plans_with, ExecOptions, ExperimentPlan, PlanOutcome, ProbeCache, ProbeCalibration,
    ProbeResult, Scenario, Sweep,
};

// Re-export the building blocks so downstream users need only this crate.
pub use dichotomy_common as common;
pub use dichotomy_consensus as consensus;
pub use dichotomy_hybrid as hybrid;
pub use dichotomy_ledger as ledger;
pub use dichotomy_merkle as merkle;
pub use dichotomy_sharding as sharding;
pub use dichotomy_simnet as simnet;
pub use dichotomy_storage as storage;
pub use dichotomy_systems as systems;
pub use dichotomy_txn as txn;
pub use dichotomy_workload as workload;
