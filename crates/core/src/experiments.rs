//! One function per table/figure of the paper's evaluation (Section 5).
//!
//! Every function returns an [`ExperimentReport`]: structured rows plus a
//! printable text rendering. The `dichotomy-bench` binaries call these
//! functions and print the reports; `EXPERIMENTS.md` records the paper's
//! numbers next to the measured ones.
//!
//! **Scale note.** The paper populates 100 K–1 M records and drives the
//! systems from a 96-node cluster for minutes. The experiments here are
//! dimensioned to finish in seconds on a laptop (thousands of records,
//! thousands of transactions); the *relative* results — orderings, trends,
//! crossover points — are what is being reproduced, not absolute numbers.

use std::fmt::Write as _;

use dichotomy_common::AbortReason;
use dichotomy_consensus::ProtocolKind;
use dichotomy_hybrid::{all_systems, forecast_throughput, HybridSpec, SystemCategory};
use dichotomy_simnet::{CostModel, NetworkConfig};
use dichotomy_systems::{
    Ahl, AhlConfig, Etcd, EtcdConfig, Fabric, FabricConfig, Quorum, QuorumConfig, ShardedTiDb,
    SpannerLike, SpannerLikeConfig, TiDb, TiDbConfig, Tikv, TransactionalSystem,
};
use dichotomy_workload::{SmallbankConfig, SmallbankWorkload, YcsbConfig, YcsbMix, YcsbWorkload};

use crate::driver::{run_workload, DriverConfig};
use crate::metrics::Metrics;

/// One labelled row of numbers.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (system name, parameter value, ...).
    pub label: String,
    /// (column name, value) pairs.
    pub values: Vec<(String, f64)>,
}

/// A structured experiment result.
#[derive(Debug, Clone)]
pub struct ExperimentReport {
    /// Experiment id, e.g. "Figure 4".
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// The measured rows.
    pub rows: Vec<Row>,
}

impl ExperimentReport {
    /// Render as a fixed-width text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        if self.rows.is_empty() {
            return out;
        }
        let _ = write!(out, "{:<28}", "");
        for (name, _) in &self.rows[0].values {
            let _ = write!(out, "{name:>16}");
        }
        let _ = writeln!(out);
        for row in &self.rows {
            let _ = write!(out, "{:<28}", row.label);
            for (_, v) in &row.values {
                let _ = write!(out, "{v:>16.1}");
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Look up a value by row label and column name.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == row)
            .and_then(|r| r.values.iter().find(|(c, _)| c == column))
            .map(|(_, v)| *v)
    }
}

/// Which of the five Figure 4/5 systems to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchSystem {
    Fabric,
    Quorum,
    TiDb,
    Etcd,
    Tikv,
}

impl BenchSystem {
    /// All five, in the paper's plotting order.
    pub const ALL: [BenchSystem; 5] = [
        BenchSystem::Fabric,
        BenchSystem::Quorum,
        BenchSystem::TiDb,
        BenchSystem::Etcd,
        BenchSystem::Tikv,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            BenchSystem::Fabric => "Fabric",
            BenchSystem::Quorum => "Quorum",
            BenchSystem::TiDb => "TiDB",
            BenchSystem::Etcd => "etcd",
            BenchSystem::Tikv => "TiKV",
        }
    }

    /// Build the system with `nodes` replicas (full replication).
    pub fn build(&self, nodes: usize) -> Box<dyn TransactionalSystem> {
        match self {
            BenchSystem::Fabric => Box::new(Fabric::new(FabricConfig {
                peers: nodes,
                max_block_txns: 100,
                block_timeout_us: 100_000,
                ..FabricConfig::default()
            })),
            BenchSystem::Quorum => Box::new(Quorum::new(QuorumConfig {
                nodes,
                max_block_txns: 100,
                block_interval_us: 100_000,
                ..QuorumConfig::default()
            })),
            BenchSystem::TiDb => Box::new(TiDb::new(TiDbConfig {
                tidb_servers: (nodes / 2).max(1),
                tikv_nodes: nodes,
                ..TiDbConfig::default()
            })),
            BenchSystem::Etcd => Box::new(Etcd::new(EtcdConfig {
                nodes,
                ..EtcdConfig::default()
            })),
            BenchSystem::Tikv => Box::new(Tikv::new(EtcdConfig {
                nodes,
                ..EtcdConfig::default()
            })),
        }
    }
}

/// The reduced-scale YCSB used by most experiments.
fn ycsb(mix: YcsbMix, record_size: usize, theta: f64, ops: usize) -> YcsbWorkload {
    YcsbWorkload::new(YcsbConfig {
        record_count: 5_000,
        record_size,
        zipf_theta: theta,
        ops_per_txn: ops,
        mix,
        ..YcsbConfig::default()
    })
}

fn peak(system: &mut dyn TransactionalSystem, workload: &mut YcsbWorkload, txns: u64) -> Metrics {
    run_workload(system, workload, &DriverConfig::saturating(txns)).metrics
}

/// Figure 4: YCSB peak throughput (update-only and query-only) for the five
/// systems.
pub fn fig04_peak_throughput(txns: u64) -> ExperimentReport {
    let mut rows = Vec::new();
    for sys in BenchSystem::ALL {
        let mut s = sys.build(5);
        let update = peak(s.as_mut(), &mut ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1), txns);
        let mut s = sys.build(5);
        let query = peak(s.as_mut(), &mut ycsb(YcsbMix::QueryOnly, 1000, 0.0, 1), txns);
        rows.push(Row {
            label: sys.name().to_string(),
            values: vec![
                ("update_tps".into(), update.throughput_tps),
                ("query_tps".into(), query.throughput_tps),
            ],
        });
    }
    ExperimentReport {
        id: "Figure 4",
        title: "YCSB peak throughput (update / query)",
        rows,
    }
}

/// Figure 5: unsaturated YCSB latency (update and query) for the five systems.
pub fn fig05_latency(txns: u64) -> ExperimentReport {
    let mut rows = Vec::new();
    for sys in BenchSystem::ALL {
        let mut s = sys.build(5);
        let update = run_workload(
            s.as_mut(),
            &mut ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
            &DriverConfig::unsaturated(txns),
        )
        .metrics;
        let mut s = sys.build(5);
        let query = run_workload(
            s.as_mut(),
            &mut ycsb(YcsbMix::QueryOnly, 1000, 0.0, 1),
            &DriverConfig::unsaturated(txns),
        )
        .metrics;
        rows.push(Row {
            label: sys.name().to_string(),
            values: vec![
                ("update_ms".into(), update.latency.mean_us / 1000.0),
                ("query_ms".into(), query.latency.mean_us / 1000.0),
            ],
        });
    }
    ExperimentReport {
        id: "Figure 5",
        title: "YCSB latency, unsaturated (update / query), ms",
        rows,
    }
}

/// Figure 6: Smallbank throughput under a skewed workload (θ = 1), for
/// Fabric, Quorum and TiDB (etcd has no transactional support).
pub fn fig06_smallbank(txns: u64) -> ExperimentReport {
    let systems = [BenchSystem::Fabric, BenchSystem::Quorum, BenchSystem::TiDb];
    let mut rows = Vec::new();
    for sys in systems {
        let mut s = sys.build(5);
        let mut workload = SmallbankWorkload::new(SmallbankConfig {
            accounts: 20_000,
            zipf_theta: 1.0,
            ..SmallbankConfig::default()
        });
        let metrics =
            run_workload(s.as_mut(), &mut workload, &DriverConfig::saturating(txns)).metrics;
        rows.push(Row {
            label: sys.name().to_string(),
            values: vec![
                ("tps".into(), metrics.throughput_tps),
                ("abort_%".into(), metrics.abort_rate_percent()),
            ],
        });
    }
    ExperimentReport {
        id: "Figure 6",
        title: "Smallbank throughput, skewed (θ=1)",
        rows,
    }
}

/// Figure 7: Quorum throughput with Raft (CFT) vs IBFT (BFT) as the number of
/// tolerated failures grows.
pub fn fig07_cft_vs_bft(txns: u64) -> ExperimentReport {
    let mut rows = Vec::new();
    for f in 1..=4usize {
        let mut values = Vec::new();
        for (name, protocol, nodes) in [
            ("raft_tps", ProtocolKind::Raft, 2 * f + 1),
            ("ibft_tps", ProtocolKind::Ibft, 3 * f + 1),
        ] {
            let mut q = Quorum::new(QuorumConfig {
                nodes,
                consensus: protocol,
                max_block_txns: 100,
                block_interval_us: 100_000,
                ..QuorumConfig::default()
            });
            let m = peak(&mut q, &mut ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1), txns);
            values.push((name.to_string(), m.throughput_tps));
        }
        rows.push(Row {
            label: format!("f={f}"),
            values,
        });
    }
    ExperimentReport {
        id: "Figure 7",
        title: "Quorum throughput: CFT (Raft) vs BFT (IBFT)",
        rows,
    }
}

/// Figure 8: latency breakdown. (a) Fabric execute/order/validate, unsaturated
/// vs saturated, against TiDB; (b) the query path: Fabric
/// authentication/simulation/endorsement vs TiDB parse/compile/storage-get.
pub fn fig08_latency_breakdown(txns: u64) -> ExperimentReport {
    let mut rows = Vec::new();
    for (label, config) in [
        ("Fabric unsaturated", DriverConfig::unsaturated(txns / 4)),
        ("Fabric saturated", DriverConfig::saturating(txns)),
    ] {
        let mut fabric = Fabric::new(FabricConfig {
            max_block_txns: 100,
            block_timeout_us: 100_000,
            ..FabricConfig::default()
        });
        let m = run_workload(&mut fabric, &mut ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1), &config).metrics;
        rows.push(Row {
            label: label.to_string(),
            values: vec![
                ("execute_ms".into(), m.phase_means_us.get("execute").copied().unwrap_or(0.0) / 1000.0),
                ("order_ms".into(), m.phase_means_us.get("order").copied().unwrap_or(0.0) / 1000.0),
                ("validate_ms".into(), m.phase_means_us.get("validate").copied().unwrap_or(0.0) / 1000.0),
            ],
        });
    }
    for (label, config) in [
        ("TiDB unsaturated", DriverConfig::unsaturated(txns / 4)),
        ("TiDB saturated", DriverConfig::saturating(txns)),
    ] {
        let mut tidb = TiDb::new(TiDbConfig::default());
        let m = run_workload(&mut tidb, &mut ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1), &config).metrics;
        rows.push(Row {
            label: label.to_string(),
            values: vec![("total_ms".into(), m.latency.mean_us / 1000.0)],
        });
    }
    // Query-path breakdown (Figure 8b), in microseconds.
    let mut fabric = Fabric::new(FabricConfig::default());
    let fq = run_workload(
        &mut fabric,
        &mut ycsb(YcsbMix::QueryOnly, 1000, 0.0, 1),
        &DriverConfig::unsaturated(txns / 4),
    )
    .metrics;
    rows.push(Row {
        label: "Fabric query (µs)".into(),
        values: vec![
            ("authentication".into(), fq.phase_means_us.get("authentication").copied().unwrap_or(0.0)),
            ("simulation".into(), fq.phase_means_us.get("simulation").copied().unwrap_or(0.0)),
            ("endorsement".into(), fq.phase_means_us.get("endorsement").copied().unwrap_or(0.0)),
        ],
    });
    let mut tidb = TiDb::new(TiDbConfig::default());
    let tq = run_workload(
        &mut tidb,
        &mut ycsb(YcsbMix::QueryOnly, 1000, 0.0, 1),
        &DriverConfig::unsaturated(txns / 4),
    )
    .metrics;
    rows.push(Row {
        label: "TiDB query (µs)".into(),
        values: vec![
            ("sql-parse".into(), tq.phase_means_us.get("sql-parse").copied().unwrap_or(0.0)),
            ("sql-compile".into(), tq.phase_means_us.get("sql-compile").copied().unwrap_or(0.0)),
            ("storage-get".into(), tq.phase_means_us.get("storage-get").copied().unwrap_or(0.0)),
        ],
    });
    ExperimentReport {
        id: "Figure 8",
        title: "Latency breakdown (update phases, query path)",
        rows,
    }
}

/// Table 4: throughput with a varying number of nodes under full replication.
pub fn tab04_scaling(txns: u64, node_counts: &[usize]) -> ExperimentReport {
    let systems = [
        BenchSystem::Fabric,
        BenchSystem::Quorum,
        BenchSystem::TiDb,
        BenchSystem::Etcd,
    ];
    let mut rows = Vec::new();
    for sys in systems {
        let mut values = Vec::new();
        for &n in node_counts {
            let mut s = sys.build(n);
            let m = peak(s.as_mut(), &mut ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1), txns);
            values.push((format!("{n}_nodes"), m.throughput_tps));
        }
        rows.push(Row {
            label: sys.name().to_string(),
            values,
        });
    }
    ExperimentReport {
        id: "Table 4",
        title: "Throughput (tps) vs number of nodes, full replication",
        rows,
    }
}

/// Table 5: throughput when varying TiDB servers and TiKV nodes independently.
pub fn tab05_tidb_matrix(txns: u64, counts: &[usize]) -> ExperimentReport {
    let mut rows = Vec::new();
    for &tidb_servers in counts {
        let mut values = Vec::new();
        for &tikv_nodes in counts {
            let mut s = TiDb::new(TiDbConfig {
                tidb_servers,
                tikv_nodes,
                ..TiDbConfig::default()
            });
            let m = peak(&mut s, &mut ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1), txns);
            values.push((format!("{tikv_nodes}_tikv"), m.throughput_tps));
        }
        rows.push(Row {
            label: format!("{tidb_servers} TiDB servers"),
            values,
        });
    }
    ExperimentReport {
        id: "Table 5",
        title: "TiDB: throughput (tps) vs #TiDB servers × #TiKV nodes",
        rows,
    }
}

/// Figure 9: throughput and abort rate under increasing Zipfian skew
/// (single-record read-modify-write transactions).
pub fn fig09_skew(txns: u64, thetas: &[f64]) -> ExperimentReport {
    let systems = [
        BenchSystem::Fabric,
        BenchSystem::Quorum,
        BenchSystem::TiDb,
        BenchSystem::Etcd,
    ];
    let mut rows = Vec::new();
    for &theta in thetas {
        let mut values = Vec::new();
        for sys in systems {
            let mut s = sys.build(5);
            let m = peak(s.as_mut(), &mut ycsb(YcsbMix::ReadModifyWrite, 1000, theta, 1), txns);
            values.push((format!("{}_tps", sys.name()), m.throughput_tps));
            if matches!(sys, BenchSystem::Fabric | BenchSystem::TiDb) {
                values.push((format!("{}_abort_%", sys.name()), m.abort_rate_percent()));
            }
        }
        rows.push(Row {
            label: format!("theta={theta:.1}"),
            values,
        });
    }
    ExperimentReport {
        id: "Figure 9",
        title: "Throughput and abort rate vs Zipfian skew",
        rows,
    }
}

/// Figure 10: throughput and abort rate vs operations per transaction (total
/// transaction payload held at 1 000 bytes).
pub fn fig10_opcount(txns: u64, op_counts: &[usize]) -> ExperimentReport {
    let systems = [
        BenchSystem::Fabric,
        BenchSystem::Quorum,
        BenchSystem::TiDb,
        BenchSystem::Etcd,
    ];
    let mut rows = Vec::new();
    for &ops in op_counts {
        let mut values = Vec::new();
        for sys in systems {
            let mut s = sys.build(5);
            let mut workload = YcsbWorkload::new(YcsbConfig {
                record_count: 5_000,
                ..YcsbConfig::op_count_sweep(ops)
            });
            let m = peak(s.as_mut(), &mut workload, txns);
            values.push((format!("{}_tps", sys.name()), m.throughput_tps));
            if sys == BenchSystem::Fabric {
                values.push((
                    "Fabric_rw_conflict_%".into(),
                    m.abort_share_percent(AbortReason::ReadWriteConflict),
                ));
                values.push((
                    "Fabric_inconsistent_%".into(),
                    m.abort_share_percent(AbortReason::InconsistentRead),
                ));
            }
            if sys == BenchSystem::TiDb {
                values.push(("TiDB_abort_%".into(), m.abort_rate_percent()));
            }
        }
        rows.push(Row {
            label: format!("{ops} ops/txn"),
            values,
        });
    }
    ExperimentReport {
        id: "Figure 10",
        title: "Throughput and abort rate vs operations per transaction",
        rows,
    }
}

/// Figure 11: throughput (and Quorum/Fabric latency breakdown) vs record size
/// under the uniform update workload.
pub fn fig11_record_size(txns: u64, sizes: &[usize]) -> ExperimentReport {
    let systems = [
        BenchSystem::Fabric,
        BenchSystem::Quorum,
        BenchSystem::TiDb,
        BenchSystem::Etcd,
    ];
    let mut rows = Vec::new();
    for &size in sizes {
        let mut values = Vec::new();
        for sys in systems {
            let mut s = sys.build(5);
            let m = peak(s.as_mut(), &mut ycsb(YcsbMix::UpdateOnly, size, 0.0, 1), txns);
            values.push((format!("{}_tps", sys.name()), m.throughput_tps));
            if sys == BenchSystem::Quorum {
                values.push((
                    "Quorum_commit_ms".into(),
                    m.phase_means_us.get("commit").copied().unwrap_or(0.0) / 1000.0,
                ));
                values.push((
                    "Quorum_proposal_ms".into(),
                    m.phase_means_us.get("proposal").copied().unwrap_or(0.0) / 1000.0,
                ));
            }
        }
        rows.push(Row {
            label: format!("{size} B"),
            values,
        });
    }
    ExperimentReport {
        id: "Figure 11",
        title: "Uniform update throughput and latency breakdown vs record size",
        rows,
    }
}

/// Figure 12: storage cost per record (Fabric state + block storage vs TiDB)
/// as the record size grows.
pub fn fig12_storage(records: u64, sizes: &[usize]) -> ExperimentReport {
    let mut rows = Vec::new();
    for &size in sizes {
        // Fabric: insert through the full pipeline so both the state DB and
        // the ledger fill up.
        let mut fabric = Fabric::new(FabricConfig {
            max_block_txns: 100,
            endorsement_divergence: 0.0,
            ..FabricConfig::default()
        });
        let mut workload = YcsbWorkload::new(YcsbConfig {
            record_count: records,
            record_size: size,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        });
        let _ = run_workload(
            &mut fabric,
            &mut workload,
            &DriverConfig {
                transactions: records,
                preload: false,
                ..DriverConfig::saturating(records)
            },
        );
        let fabric_fp = fabric.footprint();
        // TiDB.
        let mut tidb = TiDb::new(TiDbConfig::default());
        let mut workload = YcsbWorkload::new(YcsbConfig {
            record_count: records,
            record_size: size,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        });
        let _ = run_workload(
            &mut tidb,
            &mut workload,
            &DriverConfig {
                transactions: records,
                preload: false,
                ..DriverConfig::saturating(records)
            },
        );
        let tidb_fp = tidb.footprint();
        rows.push(Row {
            label: format!("{size} B"),
            values: vec![
                (
                    "Fabric_state_B/rec".into(),
                    (fabric_fp.payload_bytes + fabric_fp.index_bytes) as f64 / records as f64,
                ),
                (
                    "Fabric_block_B/rec".into(),
                    fabric_fp.history_bytes as f64 / records as f64,
                ),
                ("TiDB_B/rec".into(), tidb_fp.total() as f64 / records as f64),
            ],
        });
    }
    ExperimentReport {
        id: "Figure 12",
        title: "Storage cost per record: Fabric state / Fabric blocks / TiDB",
        rows,
    }
}

/// Figure 13: per-record storage cost of the two authenticated indexes (MBT
/// vs MPT), as a function of record size.
pub fn fig13_adr_overhead(records: u64, sizes: &[usize]) -> ExperimentReport {
    use dichotomy_common::size::StorageFootprint;
    use dichotomy_common::{Hash, Key, Value};
    use dichotomy_merkle::{MerkleBucketTree, MerklePatriciaTrie};
    let mut rows = Vec::new();
    for &size in sizes {
        let mut mbt = MerkleBucketTree::fabric_default();
        let mut mpt = MerklePatriciaTrie::new();
        for i in 0..records {
            // 16-byte keys, as in the paper's setup.
            let key = Key::new(Hash::of(&i.to_be_bytes()).0[..16].to_vec());
            let value = Value::filler(size);
            mbt.put(&key, &value);
            mpt.insert(&key, &value);
        }
        rows.push(Row {
            label: format!("{size} B"),
            values: vec![
                (
                    "MBT_B/rec".into(),
                    size as f64 + mbt.footprint().total() as f64 / records as f64,
                ),
                ("MPT_B/rec".into(), mpt.footprint().total() as f64 / records as f64),
            ],
        });
    }
    ExperimentReport {
        id: "Figure 13",
        title: "State storage per record with tamper evidence: MBT vs MPT",
        rows,
    }
}

/// Figure 14: sharded scaling under a skewed workload with 2-record
/// transactions: AHL (periodic reconfiguration), AHL (fixed members),
/// sharded TiDB and the Spanner-like model.
pub fn fig14_sharding(txns: u64, shard_counts: &[u32]) -> ExperimentReport {
    let mut rows = Vec::new();
    for &shards in shard_counts {
        let workload = || {
            YcsbWorkload::new(YcsbConfig {
                record_count: 5_000,
                record_size: 1000,
                zipf_theta: 1.0,
                ops_per_txn: 2,
                mix: YcsbMix::ReadModifyWrite,
                ..YcsbConfig::default()
            })
        };
        let run = |system: &mut dyn TransactionalSystem| {
            run_workload(system, &mut workload(), &DriverConfig::saturating(txns))
                .metrics
                .throughput_tps
        };
        let mut ahl_reconfig = Ahl::new(AhlConfig {
            shards,
            epoch_us: 2_000_000,
            reconfig_pause_us: 600_000,
            ..AhlConfig::default()
        });
        let mut ahl_fixed = Ahl::new(AhlConfig {
            shards,
            periodic_reconfiguration: false,
            ..AhlConfig::default()
        });
        let mut tidb = ShardedTiDb::new(shards, NetworkConfig::lan_1gbps(), CostModel::calibrated());
        let mut spanner = SpannerLike::new(SpannerLikeConfig {
            shards,
            ..SpannerLikeConfig::default()
        });
        rows.push(Row {
            label: format!("{} nodes ({shards} shards)", shards * 3),
            values: vec![
                ("AHL_reconfig_tps".into(), run(&mut ahl_reconfig)),
                ("AHL_fixed_tps".into(), run(&mut ahl_fixed)),
                ("TiDB_tps".into(), run(&mut tidb)),
                ("Spanner_tps".into(), run(&mut spanner)),
            ],
        });
    }
    ExperimentReport {
        id: "Figure 14",
        title: "Sharded throughput, skewed 2-record transactions",
        rows,
    }
}

/// Figure 15: the hybrid forecast framework — forecast vs reported throughput
/// for the six hybrid systems of Table 2.
pub fn fig15_hybrid_forecast() -> ExperimentReport {
    let network = NetworkConfig::lan_1gbps();
    let costs = CostModel::calibrated();
    let mut rows = Vec::new();
    for profile in all_systems() {
        let is_hybrid = matches!(
            profile.category,
            SystemCategory::OutOfBlockchainDatabase | SystemCategory::OutOfDatabaseBlockchain
        );
        if !is_hybrid {
            continue;
        }
        let spec = HybridSpec::from_profile(&profile);
        let forecast = forecast_throughput(&spec, &network, &costs);
        rows.push(Row {
            label: profile.name.to_string(),
            values: vec![
                ("band(0=low,2=high)".into(), spec.band() as u8 as f64),
                ("forecast_tps".into(), forecast),
                ("reported_tps".into(), profile.reported_tps.unwrap_or(f64::NAN)),
            ],
        });
    }
    ExperimentReport {
        id: "Figure 15",
        title: "Hybrid-system throughput forecast vs reported numbers",
        rows,
    }
}

/// Table 2: the taxonomy rendering (qualitative, no measurements).
pub fn tab02_taxonomy() -> String {
    dichotomy_hybrid::taxonomy::render_table2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_preserves_the_papers_ordering() {
        let report = fig04_peak_throughput(400);
        let quorum = report.value("Quorum", "update_tps").unwrap();
        let fabric = report.value("Fabric", "update_tps").unwrap();
        let tidb = report.value("TiDB", "update_tps").unwrap();
        let etcd = report.value("etcd", "update_tps").unwrap();
        assert!(fabric > quorum, "Fabric {fabric:.0} vs Quorum {quorum:.0}");
        assert!(tidb > fabric, "TiDB {tidb:.0} vs Fabric {fabric:.0}");
        assert!(etcd > tidb, "etcd {etcd:.0} vs TiDB {tidb:.0}");
        // Query throughput exceeds update throughput everywhere.
        for sys in ["Fabric", "Quorum", "TiDB", "etcd", "TiKV"] {
            assert!(
                report.value(sys, "query_tps").unwrap() > report.value(sys, "update_tps").unwrap(),
                "{sys}"
            );
        }
        // Rendering contains every system.
        let text = report.render();
        assert!(text.contains("Quorum") && text.contains("TiKV"));
    }

    #[test]
    fn fig05_blockchain_latency_exceeds_database_latency() {
        let report = fig05_latency(60);
        let fabric = report.value("Fabric", "update_ms").unwrap();
        let quorum = report.value("Quorum", "update_ms").unwrap();
        let tidb = report.value("TiDB", "update_ms").unwrap();
        let etcd = report.value("etcd", "update_ms").unwrap();
        assert!(fabric > tidb && quorum > tidb, "fabric {fabric:.1} quorum {quorum:.1} tidb {tidb:.1}");
        assert!(tidb < 100.0 && etcd < 100.0);
        // Queries are single-digit ms for blockchains, sub-ms for databases.
        assert!(report.value("Fabric", "query_ms").unwrap() > report.value("TiDB", "query_ms").unwrap());
    }

    #[test]
    fn fig09_skew_collapses_tidb_but_not_etcd_or_quorum() {
        let report = fig09_skew(400, &[0.0, 1.0]);
        let tidb_uniform = report.value("theta=0.0", "TiDB_tps").unwrap();
        let tidb_skewed = report.value("theta=1.0", "TiDB_tps").unwrap();
        assert!(
            tidb_skewed < tidb_uniform * 0.6,
            "TiDB {tidb_uniform:.0} -> {tidb_skewed:.0}"
        );
        let etcd_uniform = report.value("theta=0.0", "etcd_tps").unwrap();
        let etcd_skewed = report.value("theta=1.0", "etcd_tps").unwrap();
        assert!(etcd_skewed > etcd_uniform * 0.7);
        // Fabric aborts grow with skew.
        let fabric_aborts_uniform = report.value("theta=0.0", "Fabric_abort_%").unwrap();
        let fabric_aborts_skewed = report.value("theta=1.0", "Fabric_abort_%").unwrap();
        assert!(fabric_aborts_skewed > fabric_aborts_uniform);
    }

    #[test]
    fn fig13_mpt_overhead_dwarfs_mbt_overhead() {
        let report = fig13_adr_overhead(2_000, &[10, 1000]);
        for size in ["10 B", "1000 B"] {
            let mbt = report.value(size, "MBT_B/rec").unwrap();
            let mpt = report.value(size, "MPT_B/rec").unwrap();
            assert!(mpt > mbt + 500.0, "{size}: MBT {mbt:.0} vs MPT {mpt:.0}");
        }
    }

    #[test]
    fn fig15_report_covers_all_six_hybrids() {
        let report = fig15_hybrid_forecast();
        assert_eq!(report.rows.len(), 6);
        let veritas = report.value("Veritas", "forecast_tps").unwrap();
        let chainify = report.value("ChainifyDB", "forecast_tps").unwrap();
        assert!(veritas > chainify);
    }
}
