//! One plan constructor per table/figure of the paper's evaluation
//! (Section 5).
//!
//! Every experiment is now *data*: a `figNN_plan`/`tabNN_plan` function
//! assembles an [`ExperimentPlan`] — systems described by
//! [`SystemSpec`](dichotomy_systems::SystemSpec), workloads by
//! [`WorkloadSpec`], sweeps by [`Sweep`](crate::scenario::Sweep) — and the
//! one generic engine, [`run_plan`], executes it. The historical
//! `figNN_*`/`tabNN_*` entry points remain as thin wrappers that expand and
//! run the plan at the workspace default seed, returning the same
//! [`ExperimentReport`] rows (ids, labels and column names unchanged).
//!
//! **Scale note.** The paper populates 100 K–1 M records and drives the
//! systems from a 96-node cluster for minutes. The plans here are
//! dimensioned to finish in seconds on a laptop (thousands of records,
//! thousands of transactions); the *relative* results — orderings, trends,
//! crossover points — are what is being reproduced, not absolute numbers.

use std::fmt::Write as _;

use dichotomy_common::rng::DEFAULT_SEED;
use dichotomy_common::{AbortReason, Decode, Encode, NodeId};
use dichotomy_consensus::ProtocolKind;
use dichotomy_hybrid::{all_systems, SystemCategory};
use dichotomy_simnet::{FaultPlan, NodeFault};
use dichotomy_systems::{SystemKind, SystemSpec};
use dichotomy_workload::{SmallbankConfig, WorkloadSpec, YcsbConfig, YcsbMix};

use crate::driver::{ArrivalSpec, DriverConfig};
use crate::metrics::MetricsMode;
use crate::scenario::{
    run_plan, ColumnSpec, ExperimentPlan, Metric, PlannedRow, PlannedRun, Probe, Scenario, Sweep,
    SystemEntry,
};

/// One labelled row of numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Row label (system name, parameter value, ...).
    pub label: String,
    /// (column name, value) pairs.
    pub values: Vec<(String, f64)>,
    /// Windowed time series, one per driving probe backing the row (empty
    /// for non-driving probes). Rendered only by machine-readable outputs
    /// (`repro --json`); the text table stays scalar.
    pub series: Vec<RowSeries>,
}

/// A named windowed time series attached to a report row.
#[derive(Debug, Clone, PartialEq)]
pub struct RowSeries {
    /// Which probe produced it (the system label).
    pub name: String,
    /// Events the probe's engine clamped to its clock (scheduled into the
    /// past). Healthy runs report 0; surfacing the counter here makes report
    /// equality — including the `jobs=1` vs `jobs=N` determinism check —
    /// cover it.
    pub events_clamped: u64,
    /// The invariant-oracle verdicts for the probe's run ([`crate::chaos`]).
    /// Probes that reach the report always show passing outcomes — a
    /// violated oracle panics the probe into a labelled [`ProbeFailure`]
    /// instead — so this is the positive witness `repro --json` renders.
    pub oracles: crate::chaos::OracleReport,
    /// The windowed throughput/latency/abort data.
    pub series: crate::metrics::TimeSeries,
}

impl Encode for RowSeries {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.name.encode_into(out);
        self.events_clamped.encode_into(out);
        self.oracles.encode_into(out);
        self.series.encode_into(out);
    }
}

impl Decode for RowSeries {
    fn decode_from(input: &mut &[u8]) -> Option<Self> {
        Some(RowSeries {
            name: String::decode_from(input)?,
            events_clamped: u64::decode_from(input)?,
            oracles: crate::chaos::OracleReport::decode_from(input)?,
            series: crate::metrics::TimeSeries::decode_from(input)?,
        })
    }
}

/// One probe that panicked during [`crate::scenario::run_plan`]: which row it
/// backed, which probe it was, and the panic message. The probe's columns
/// render as NaN (`null` in JSON); the rest of the experiment survives.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeFailure {
    /// Label of the row the probe contributed to.
    pub row: String,
    /// The probe's label (the system under test, or the probe kind).
    pub probe: String,
    /// Plan-order probe index (stable across worker counts).
    pub index: usize,
    /// The panic message.
    pub message: String,
}

/// A structured experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentReport {
    /// Experiment id, e.g. "Figure 4".
    pub id: &'static str,
    /// What it reproduces.
    pub title: &'static str,
    /// The measured rows.
    pub rows: Vec<Row>,
    /// Probes that panicked, in plan order (empty on a clean run).
    pub failures: Vec<ProbeFailure>,
    /// Pre-rendered text for qualitative experiments (Table 2's taxonomy);
    /// rendered verbatim instead of the row grid when present.
    pub text: Option<String>,
}

impl ExperimentReport {
    /// Render as a fixed-width text table (or the preformatted text for
    /// qualitative reports).
    pub fn render(&self) -> String {
        if let Some(text) = &self.text {
            return text.clone();
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        if !self.rows.is_empty() {
            let _ = write!(out, "{:<28}", "");
            for (name, _) in &self.rows[0].values {
                let _ = write!(out, "{name:>16}");
            }
            let _ = writeln!(out);
            for row in &self.rows {
                let _ = write!(out, "{:<28}", row.label);
                for (_, v) in &row.values {
                    let _ = write!(out, "{v:>16.1}");
                }
                let _ = writeln!(out);
            }
        }
        for f in &self.failures {
            let _ = writeln!(
                out,
                "!! probe '{}' on row '{}' failed: {}",
                f.probe, f.row, f.message
            );
        }
        out
    }

    /// Look up a value by row label and column name.
    pub fn value(&self, row: &str, column: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.label == row)
            .and_then(|r| r.values.iter().find(|(c, _)| c == column))
            .map(|(_, v)| *v)
    }
}

/// The five fully replicated systems of Figures 4/5, in the paper's plotting
/// order.
const BENCH_FIVE: [SystemKind; 5] = [
    SystemKind::Fabric,
    SystemKind::Quorum,
    SystemKind::TiDb,
    SystemKind::Etcd,
    SystemKind::Tikv,
];

/// The benchmarked deployment of a system with `nodes` replicas (full
/// replication, the paper's 100 ms / 100-txn block cutting for the
/// blockchains).
fn bench_spec(kind: SystemKind, nodes: usize) -> SystemSpec {
    let spec = SystemSpec::new(kind).with_nodes(nodes);
    match kind {
        SystemKind::Fabric | SystemKind::Quorum => spec.with_blocks(100, 100_000),
        _ => spec,
    }
}

/// The reduced-scale YCSB used by most experiments.
fn ycsb(mix: YcsbMix, record_size: usize, theta: f64, ops: usize) -> WorkloadSpec {
    WorkloadSpec::Ycsb(YcsbConfig {
        record_count: 5_000,
        record_size,
        zipf_theta: theta,
        ops_per_txn: ops,
        mix,
        ..YcsbConfig::default()
    })
}

fn col(name: impl Into<String>, metric: Metric) -> ColumnSpec {
    ColumnSpec::new(name, metric)
}

fn drive(
    system: SystemSpec,
    workload: WorkloadSpec,
    driver: DriverConfig,
    columns: Vec<ColumnSpec>,
    seed: u64,
) -> PlannedRun {
    let mut system = system;
    if system.seed.is_none() {
        system.seed = Some(seed);
    }
    PlannedRun {
        probe: Probe::Drive {
            system,
            workload: workload.with_seed(seed),
            driver: driver.with_seed(seed),
        },
        columns,
    }
}

/// Figure 4 plan: YCSB peak throughput (update-only and query-only) for the
/// five systems.
pub fn fig04_plan(txns: u64, seed: u64) -> ExperimentPlan {
    let rows = BENCH_FIVE
        .iter()
        .map(|&kind| PlannedRow {
            label: kind.name().to_string(),
            runs: vec![
                drive(
                    bench_spec(kind, 5),
                    ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
                    DriverConfig::saturating(txns),
                    vec![col("update_tps", Metric::ThroughputTps)],
                    seed,
                ),
                drive(
                    bench_spec(kind, 5),
                    ycsb(YcsbMix::QueryOnly, 1000, 0.0, 1),
                    DriverConfig::saturating(txns),
                    vec![col("query_tps", Metric::ThroughputTps)],
                    seed,
                ),
            ],
        })
        .collect();
    ExperimentPlan {
        id: "Figure 4",
        title: "YCSB peak throughput (update / query)",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Figure 4: YCSB peak throughput for the five systems.
pub fn fig04_peak_throughput(txns: u64) -> ExperimentReport {
    run_plan(&fig04_plan(txns, DEFAULT_SEED))
}

/// Figure 5 plan: unsaturated YCSB latency (update and query) for the five
/// systems.
pub fn fig05_plan(txns: u64, seed: u64) -> ExperimentPlan {
    let rows = BENCH_FIVE
        .iter()
        .map(|&kind| PlannedRow {
            label: kind.name().to_string(),
            runs: vec![
                drive(
                    bench_spec(kind, 5),
                    ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
                    DriverConfig::unsaturated(txns),
                    vec![col("update_ms", Metric::LatencyMeanMs)],
                    seed,
                ),
                drive(
                    bench_spec(kind, 5),
                    ycsb(YcsbMix::QueryOnly, 1000, 0.0, 1),
                    DriverConfig::unsaturated(txns),
                    vec![col("query_ms", Metric::LatencyMeanMs)],
                    seed,
                ),
            ],
        })
        .collect();
    ExperimentPlan {
        id: "Figure 5",
        title: "YCSB latency, unsaturated (update / query), ms",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Figure 5: unsaturated YCSB latency for the five systems.
pub fn fig05_latency(txns: u64) -> ExperimentReport {
    run_plan(&fig05_plan(txns, DEFAULT_SEED))
}

/// Figure 6 plan: Smallbank throughput under a skewed workload (θ = 1), for
/// Fabric, Quorum and TiDB (etcd has no transactional support).
pub fn fig06_plan(txns: u64, seed: u64) -> ExperimentPlan {
    let scenario = Scenario {
        id: "Figure 6",
        title: "Smallbank throughput, skewed (θ=1)",
        systems: [SystemKind::Fabric, SystemKind::Quorum, SystemKind::TiDb]
            .iter()
            .map(|&kind| SystemEntry {
                spec: bench_spec(kind, 5),
                columns: vec![
                    col("tps", Metric::ThroughputTps),
                    col("abort_%", Metric::AbortPercent),
                ],
            })
            .collect(),
        workload: WorkloadSpec::Smallbank(SmallbankConfig {
            accounts: 20_000,
            zipf_theta: 1.0,
            ..SmallbankConfig::default()
        }),
        driver: DriverConfig::saturating(txns),
        sweep: Sweep::None,
        row_labels: None,
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Figure 6: Smallbank throughput, skewed.
pub fn fig06_smallbank(txns: u64) -> ExperimentReport {
    run_plan(&fig06_plan(txns, DEFAULT_SEED))
}

/// Figure 7 plan: Quorum throughput with Raft (CFT) vs IBFT (BFT) as the
/// number of tolerated failures grows. The node count per row follows the
/// failure model: 2f+1 for Raft, 3f+1 for IBFT.
pub fn fig07_plan(txns: u64, seed: u64) -> ExperimentPlan {
    let rows = (1..=4usize)
        .map(|f| PlannedRow {
            label: format!("f={f}"),
            runs: [
                ("raft_tps", ProtocolKind::Raft, 2 * f + 1),
                ("ibft_tps", ProtocolKind::Ibft, 3 * f + 1),
            ]
            .into_iter()
            .map(|(name, protocol, nodes)| {
                drive(
                    bench_spec(SystemKind::Quorum, nodes).with_consensus(protocol),
                    ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
                    DriverConfig::saturating(txns),
                    vec![col(name, Metric::ThroughputTps)],
                    seed,
                )
            })
            .collect(),
        })
        .collect();
    ExperimentPlan {
        id: "Figure 7",
        title: "Quorum throughput: CFT (Raft) vs BFT (IBFT)",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Figure 7: Quorum CFT vs BFT throughput.
pub fn fig07_cft_vs_bft(txns: u64) -> ExperimentReport {
    run_plan(&fig07_plan(txns, DEFAULT_SEED))
}

/// Figure 8 plan: latency breakdown. (a) Fabric execute/order/validate,
/// unsaturated vs saturated, against TiDB; (b) the query path: Fabric
/// authentication/simulation/endorsement vs TiDB parse/compile/storage-get.
pub fn fig08_plan(txns: u64, seed: u64) -> ExperimentPlan {
    // The paper's TiDB deployment here is the 3+3 default, not the
    // half-frontend split of the full-replication sweeps.
    let tidb = || {
        SystemSpec::new(SystemKind::TiDb)
            .with_nodes(3)
            .with_frontends(3)
    };
    let fabric_bench = || SystemSpec::new(SystemKind::Fabric).with_blocks(100, 100_000);
    let update = || ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1);
    let query = || ycsb(YcsbMix::QueryOnly, 1000, 0.0, 1);
    let fabric_phase_cols = || {
        vec![
            col("execute_ms", Metric::PhaseMeanMs("execute")),
            col("order_ms", Metric::PhaseMeanMs("order")),
            col("validate_ms", Metric::PhaseMeanMs("validate")),
        ]
    };
    let rows = vec![
        PlannedRow {
            label: "Fabric unsaturated".into(),
            runs: vec![drive(
                fabric_bench(),
                update(),
                DriverConfig::unsaturated(txns / 4),
                fabric_phase_cols(),
                seed,
            )],
        },
        PlannedRow {
            label: "Fabric saturated".into(),
            runs: vec![drive(
                fabric_bench(),
                update(),
                DriverConfig::saturating(txns),
                fabric_phase_cols(),
                seed,
            )],
        },
        PlannedRow {
            label: "TiDB unsaturated".into(),
            runs: vec![drive(
                tidb(),
                update(),
                DriverConfig::unsaturated(txns / 4),
                vec![col("total_ms", Metric::LatencyMeanMs)],
                seed,
            )],
        },
        PlannedRow {
            label: "TiDB saturated".into(),
            runs: vec![drive(
                tidb(),
                update(),
                DriverConfig::saturating(txns),
                vec![col("total_ms", Metric::LatencyMeanMs)],
                seed,
            )],
        },
        // Query-path breakdown (Figure 8b), in microseconds, at the models'
        // default deployments.
        PlannedRow {
            label: "Fabric query (µs)".into(),
            runs: vec![drive(
                SystemSpec::new(SystemKind::Fabric),
                query(),
                DriverConfig::unsaturated(txns / 4),
                vec![
                    col("authentication", Metric::PhaseMeanUs("authentication")),
                    col("simulation", Metric::PhaseMeanUs("simulation")),
                    col("endorsement", Metric::PhaseMeanUs("endorsement")),
                ],
                seed,
            )],
        },
        PlannedRow {
            label: "TiDB query (µs)".into(),
            runs: vec![drive(
                tidb(),
                query(),
                DriverConfig::unsaturated(txns / 4),
                vec![
                    col("sql-parse", Metric::PhaseMeanUs("sql-parse")),
                    col("sql-compile", Metric::PhaseMeanUs("sql-compile")),
                    col("storage-get", Metric::PhaseMeanUs("storage-get")),
                ],
                seed,
            )],
        },
    ];
    ExperimentPlan {
        id: "Figure 8",
        title: "Latency breakdown (update phases, query path)",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Figure 8: latency breakdown.
pub fn fig08_latency_breakdown(txns: u64) -> ExperimentReport {
    run_plan(&fig08_plan(txns, DEFAULT_SEED))
}

/// The four systems of the parameter sweeps (Figures 9–11, Table 4).
const SWEEP_FOUR: [SystemKind; 4] = [
    SystemKind::Fabric,
    SystemKind::Quorum,
    SystemKind::TiDb,
    SystemKind::Etcd,
];

/// Figure 9 plan: throughput and abort rate under increasing Zipfian skew
/// (single-record read-modify-write transactions).
pub fn fig09_plan(txns: u64, thetas: &[f64], seed: u64) -> ExperimentPlan {
    let scenario = Scenario {
        id: "Figure 9",
        title: "Throughput and abort rate vs Zipfian skew",
        systems: SWEEP_FOUR
            .iter()
            .map(|&kind| {
                let mut columns = vec![col(format!("{}_tps", kind.name()), Metric::ThroughputTps)];
                if matches!(kind, SystemKind::Fabric | SystemKind::TiDb) {
                    columns.push(col(
                        format!("{}_abort_%", kind.name()),
                        Metric::AbortPercent,
                    ));
                }
                SystemEntry {
                    spec: bench_spec(kind, 5),
                    columns,
                }
            })
            .collect(),
        workload: ycsb(YcsbMix::ReadModifyWrite, 1000, 0.0, 1),
        driver: DriverConfig::saturating(txns),
        sweep: Sweep::Theta(thetas.to_vec()),
        row_labels: None,
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Figure 9: skew sweep.
pub fn fig09_skew(txns: u64, thetas: &[f64]) -> ExperimentReport {
    run_plan(&fig09_plan(txns, thetas, DEFAULT_SEED))
}

/// Figure 10 plan: throughput and abort rate vs operations per transaction
/// (total transaction payload held at 1 000 bytes).
pub fn fig10_plan(txns: u64, op_counts: &[usize], seed: u64) -> ExperimentPlan {
    let scenario = Scenario {
        id: "Figure 10",
        title: "Throughput and abort rate vs operations per transaction",
        systems: SWEEP_FOUR
            .iter()
            .map(|&kind| {
                let mut columns = vec![col(format!("{}_tps", kind.name()), Metric::ThroughputTps)];
                if kind == SystemKind::Fabric {
                    columns.push(col(
                        "Fabric_rw_conflict_%",
                        Metric::AbortSharePercent(AbortReason::ReadWriteConflict),
                    ));
                    columns.push(col(
                        "Fabric_inconsistent_%",
                        Metric::AbortSharePercent(AbortReason::InconsistentRead),
                    ));
                }
                if kind == SystemKind::TiDb {
                    columns.push(col("TiDB_abort_%", Metric::AbortPercent));
                }
                SystemEntry {
                    spec: bench_spec(kind, 5),
                    columns,
                }
            })
            .collect(),
        workload: ycsb(YcsbMix::ReadModifyWrite, 1000, 0.0, 1),
        driver: DriverConfig::saturating(txns),
        sweep: Sweep::OpsPerTxn {
            counts: op_counts.to_vec(),
            payload_bytes: Some(1_000),
        },
        row_labels: None,
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Figure 10: operations-per-transaction sweep.
pub fn fig10_opcount(txns: u64, op_counts: &[usize]) -> ExperimentReport {
    run_plan(&fig10_plan(txns, op_counts, DEFAULT_SEED))
}

/// Figure 11 plan: throughput (and Quorum latency breakdown) vs record size
/// under the uniform update workload.
pub fn fig11_plan(txns: u64, sizes: &[usize], seed: u64) -> ExperimentPlan {
    let scenario = Scenario {
        id: "Figure 11",
        title: "Uniform update throughput and latency breakdown vs record size",
        systems: SWEEP_FOUR
            .iter()
            .map(|&kind| {
                let mut columns = vec![col(format!("{}_tps", kind.name()), Metric::ThroughputTps)];
                if kind == SystemKind::Quorum {
                    columns.push(col("Quorum_commit_ms", Metric::PhaseMeanMs("commit")));
                    columns.push(col("Quorum_proposal_ms", Metric::PhaseMeanMs("proposal")));
                }
                SystemEntry {
                    spec: bench_spec(kind, 5),
                    columns,
                }
            })
            .collect(),
        workload: ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
        driver: DriverConfig::saturating(txns),
        sweep: Sweep::RecordSize(sizes.to_vec()),
        row_labels: None,
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Figure 11: record-size sweep.
pub fn fig11_record_size(txns: u64, sizes: &[usize]) -> ExperimentReport {
    run_plan(&fig11_plan(txns, sizes, DEFAULT_SEED))
}

/// Figure 12 plan: storage cost per record (Fabric state + block storage vs
/// TiDB) as the record size grows. Every transaction inserts a fresh record
/// (`preload: false`), so `records` drives both the write count and the
/// per-record denominators.
pub fn fig12_plan(records: u64, sizes: &[usize], seed: u64) -> ExperimentPlan {
    let driver = || DriverConfig {
        transactions: records,
        preload: false,
        ..DriverConfig::saturating(records)
    };
    let workload = |size: usize| {
        WorkloadSpec::Ycsb(YcsbConfig {
            record_count: records,
            record_size: size,
            mix: YcsbMix::UpdateOnly,
            ..YcsbConfig::default()
        })
    };
    // Insert through the full pipeline so both the state DB and the ledger
    // fill up; endorsement divergence off so every insert commits.
    let fabric = || {
        let mut spec = SystemSpec::new(SystemKind::Fabric).with_endorsement_divergence(0.0);
        spec.block_txns = Some(100);
        spec
    };
    let tidb = || {
        SystemSpec::new(SystemKind::TiDb)
            .with_nodes(3)
            .with_frontends(3)
    };
    let rows = sizes
        .iter()
        .map(|&size| PlannedRow {
            label: format!("{size} B"),
            runs: vec![
                drive(
                    fabric(),
                    workload(size),
                    driver(),
                    vec![
                        col("Fabric_state_B/rec", Metric::StateBytesPerRecord),
                        col("Fabric_block_B/rec", Metric::HistoryBytesPerRecord),
                    ],
                    seed,
                ),
                drive(
                    tidb(),
                    workload(size),
                    driver(),
                    vec![col("TiDB_B/rec", Metric::TotalBytesPerRecord)],
                    seed,
                ),
            ],
        })
        .collect();
    ExperimentPlan {
        id: "Figure 12",
        title: "Storage cost per record: Fabric state / Fabric blocks / TiDB",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Figure 12: storage cost per record.
pub fn fig12_storage(records: u64, sizes: &[usize]) -> ExperimentReport {
    run_plan(&fig12_plan(records, sizes, DEFAULT_SEED))
}

/// Figure 13 plan: per-record storage cost of the two authenticated indexes
/// (MBT vs MPT), as a function of record size.
pub fn fig13_plan(records: u64, sizes: &[usize]) -> ExperimentPlan {
    let rows = sizes
        .iter()
        .map(|&size| PlannedRow {
            label: format!("{size} B"),
            runs: vec![PlannedRun {
                probe: Probe::AdrOverhead {
                    records,
                    record_size: size,
                },
                columns: vec![
                    col("MBT_B/rec", Metric::Extra("mbt_b_per_rec")),
                    col("MPT_B/rec", Metric::Extra("mpt_b_per_rec")),
                ],
            }],
        })
        .collect();
    ExperimentPlan {
        id: "Figure 13",
        title: "State storage per record with tamper evidence: MBT vs MPT",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Figure 13: authenticated-index overhead.
pub fn fig13_adr_overhead(records: u64, sizes: &[usize]) -> ExperimentReport {
    run_plan(&fig13_plan(records, sizes))
}

/// Figure 14 plan: sharded scaling under a skewed workload with 2-record
/// transactions: AHL (periodic reconfiguration), AHL (fixed members),
/// sharded TiDB and the Spanner-like model.
pub fn fig14_plan(txns: u64, shard_counts: &[u32], seed: u64) -> ExperimentPlan {
    let scenario = Scenario {
        id: "Figure 14",
        title: "Sharded throughput, skewed 2-record transactions",
        systems: vec![
            SystemEntry {
                spec: SystemSpec::new(SystemKind::Ahl).with_reconfiguration(2_000_000, 600_000),
                columns: vec![col("AHL_reconfig_tps", Metric::ThroughputTps)],
            },
            SystemEntry {
                spec: SystemSpec::new(SystemKind::Ahl).with_periodic_reconfiguration(false),
                columns: vec![col("AHL_fixed_tps", Metric::ThroughputTps)],
            },
            SystemEntry {
                // A sharded TiDb spec builds the region-partitioned model.
                spec: SystemSpec::new(SystemKind::TiDb).with_shards(1),
                columns: vec![col("TiDB_tps", Metric::ThroughputTps)],
            },
            SystemEntry {
                spec: SystemSpec::new(SystemKind::SpannerLike),
                columns: vec![col("Spanner_tps", Metric::ThroughputTps)],
            },
        ],
        workload: WorkloadSpec::Ycsb(YcsbConfig {
            record_count: 5_000,
            record_size: 1000,
            zipf_theta: 1.0,
            ops_per_txn: 2,
            mix: YcsbMix::ReadModifyWrite,
            ..YcsbConfig::default()
        }),
        driver: DriverConfig::saturating(txns),
        sweep: Sweep::Shards(shard_counts.to_vec()),
        row_labels: Some(
            shard_counts
                .iter()
                .map(|&shards| format!("{} nodes ({shards} shards)", shards * 3))
                .collect(),
        ),
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Figure 14: sharded scaling.
pub fn fig14_sharding(txns: u64, shard_counts: &[u32]) -> ExperimentReport {
    run_plan(&fig14_plan(txns, shard_counts, DEFAULT_SEED))
}

/// Figure 15 plan: the hybrid forecast framework — forecast vs reported
/// throughput for the six hybrid systems of Table 2.
pub fn fig15_plan() -> ExperimentPlan {
    let rows = all_systems()
        .iter()
        .filter(|profile| {
            matches!(
                profile.category,
                SystemCategory::OutOfBlockchainDatabase | SystemCategory::OutOfDatabaseBlockchain
            )
        })
        .map(|profile| PlannedRow {
            label: profile.name.to_string(),
            runs: vec![PlannedRun {
                probe: Probe::Forecast {
                    profile: profile.name,
                },
                columns: vec![
                    col("band(0=low,2=high)", Metric::Extra("band")),
                    col("forecast_tps", Metric::Extra("forecast_tps")),
                    col("reported_tps", Metric::Extra("reported_tps")),
                ],
            }],
        })
        .collect();
    ExperimentPlan {
        id: "Figure 15",
        title: "Hybrid-system throughput forecast vs reported numbers",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Figure 15: hybrid forecast vs reported throughput.
pub fn fig15_hybrid_forecast() -> ExperimentReport {
    run_plan(&fig15_plan())
}

/// Table 2 plan: the taxonomy rendering (qualitative, no measurements).
pub fn tab02_plan() -> ExperimentPlan {
    ExperimentPlan {
        id: "Table 2",
        title: "Design-space taxonomy",
        rows: Vec::new(),
        text: Some(dichotomy_hybrid::taxonomy::render_table2()),
        diagnostics: Vec::new(),
    }
}

/// Table 2: the taxonomy rendering.
pub fn tab02_taxonomy() -> String {
    run_plan(&tab02_plan()).render()
}

/// Table 4 plan: throughput with a varying number of nodes under full
/// replication. Rows are systems; columns are the node counts.
pub fn tab04_plan(txns: u64, node_counts: &[usize], seed: u64) -> ExperimentPlan {
    let rows = SWEEP_FOUR
        .iter()
        .map(|&kind| PlannedRow {
            label: kind.name().to_string(),
            runs: node_counts
                .iter()
                .map(|&n| {
                    drive(
                        bench_spec(kind, n),
                        ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
                        DriverConfig::saturating(txns),
                        vec![col(format!("{n}_nodes"), Metric::ThroughputTps)],
                        seed,
                    )
                })
                .collect(),
        })
        .collect();
    ExperimentPlan {
        id: "Table 4",
        title: "Throughput (tps) vs number of nodes, full replication",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Table 4: node-count scaling.
pub fn tab04_scaling(txns: u64, node_counts: &[usize]) -> ExperimentReport {
    run_plan(&tab04_plan(txns, node_counts, DEFAULT_SEED))
}

/// Table 5 plan: throughput when varying TiDB servers and TiKV nodes
/// independently.
pub fn tab05_plan(txns: u64, counts: &[usize], seed: u64) -> ExperimentPlan {
    let rows = counts
        .iter()
        .map(|&tidb_servers| PlannedRow {
            label: format!("{tidb_servers} TiDB servers"),
            runs: counts
                .iter()
                .map(|&tikv_nodes| {
                    drive(
                        SystemSpec::new(SystemKind::TiDb)
                            .with_nodes(tikv_nodes)
                            .with_frontends(tidb_servers),
                        ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
                        DriverConfig::saturating(txns),
                        vec![col(format!("{tikv_nodes}_tikv"), Metric::ThroughputTps)],
                        seed,
                    )
                })
                .collect(),
        })
        .collect();
    ExperimentPlan {
        id: "Table 5",
        title: "TiDB: throughput (tps) vs #TiDB servers × #TiKV nodes",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Table 5: the TiDB server × storage-node matrix.
pub fn tab05_tidb_matrix(txns: u64, counts: &[usize]) -> ExperimentReport {
    run_plan(&tab05_plan(txns, counts, DEFAULT_SEED))
}

/// The arrival span (µs) of the fault-scenario run: `txns` arrivals at the
/// 2 000 tps the plan offers.
fn fault01_span_us(txns: u64) -> u64 {
    txns.saturating_mul(500).max(12)
}

/// Fault 1 plan: the Raft-backed etcd model driven through a declarative
/// crash-and-recover schedule. The leader crashes for the middle third of
/// the arrival span; the windowed time series shows commits dropping to zero
/// during the outage and the queued backlog bursting through after the crash
/// heals and the failover pause elapses. The load (2 000 tps) is well under
/// etcd's capacity so the dip is attributable to the fault, not saturation.
pub fn fault01_plan(txns: u64, seed: u64) -> ExperimentPlan {
    let span = fault01_span_us(txns);
    let mut faults = FaultPlan::none();
    faults.add(NodeFault::crash_until(NodeId(0), span / 3, 2 * span / 3));
    let scenario = Scenario {
        id: "Fault 1",
        title: "etcd update throughput through a leader crash and recovery",
        systems: vec![SystemEntry {
            spec: SystemSpec::new(SystemKind::Etcd),
            columns: vec![
                col("tps", Metric::ThroughputTps),
                col("abort_%", Metric::AbortPercent),
            ],
        }],
        workload: ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
        driver: DriverConfig {
            transactions: txns,
            offered_tps: 2_000.0,
            window_us: Some((span / 12).max(1)),
            ..DriverConfig::default()
        },
        sweep: Sweep::None,
        row_labels: None,
        faults: Some(faults),
        seed,
    };
    scenario.plan()
}

/// Fault 1: leader crash and recovery on the Raft-backed etcd model.
pub fn fault01_crash_recovery(txns: u64) -> ExperimentReport {
    run_plan(&fault01_plan(txns, DEFAULT_SEED))
}

/// The arrival span (µs) of the chaos grid's runs: `txns` arrivals at the
/// 1 000 tps the plan offers.
pub fn chaos01_span_us(txns: u64) -> u64 {
    txns.saturating_mul(1_000).max(12)
}

/// The labelled fault schedules of the chaos grid, one per row, over an
/// arrival span of `span` µs. Together they exercise every class of the
/// fault algebra: node crash (primary and shard leader), coordinator
/// failover, network partition, and an epoch-pause reconfiguration with
/// membership churn.
pub fn chaos01_fault_rows(span: u64) -> Vec<(String, FaultPlan)> {
    let (from, until) = (span / 3, 2 * span / 3);
    let mut primary_crash = FaultPlan::none();
    primary_crash.add(NodeFault::crash_until(NodeId(0), from, until));
    let mut shard_crash = FaultPlan::none();
    shard_crash.add(NodeFault::crash_until(NodeId(1), from, until));
    let mut failover = FaultPlan::none();
    failover.add_failover(from, span / 6);
    let mut partition = FaultPlan::none();
    partition.add_partition(vec![NodeId(0)], from, Some(until));
    let mut reconfig = FaultPlan::none();
    reconfig.add_reconfiguration(from, span / 6, true);
    vec![
        ("baseline".to_string(), FaultPlan::none()),
        ("primary-crash".to_string(), primary_crash),
        ("shard-crash".to_string(), shard_crash),
        ("failover".to_string(), failover),
        ("partition".to_string(), partition),
        ("reconfig".to_string(), reconfig),
    ]
}

/// The chaos grid's deployment of each model: defaults everywhere, except
/// the blockchains cut small fast blocks (25 txns / 10 ms) so pipeline
/// latency stays well inside the dip-detection windows.
fn chaos_spec(kind: SystemKind) -> SystemSpec {
    let spec = SystemSpec::new(kind);
    match kind {
        SystemKind::Fabric | SystemKind::Quorum => spec.with_blocks(25, 10_000),
        _ => spec,
    }
}

/// Chaos 1 plan: the full model grid (every [`SystemKind`]) × the
/// declarative fault schedules of [`chaos01_fault_rows`], at a 1 000 tps
/// offered load that is comfortably under every model's capacity — so a
/// throughput dip in the windowed series is attributable to the row's fault,
/// and the post-heal burst to the queued backlog draining. Each model
/// consumes the fault classes its architecture defines (see the SystemSpec
/// fault docs); the rest of the schedule is inert for it. Every cell's
/// receipt stream feeds the invariant oracles; a violation fails the probe.
pub fn chaos01_plan(txns: u64, seed: u64) -> ExperimentPlan {
    let span = chaos01_span_us(txns);
    let scenario = Scenario {
        id: "Chaos 1",
        title: "chaos grid: every model through the declarative fault schedules",
        systems: SystemKind::ALL
            .iter()
            .map(|&kind| SystemEntry {
                spec: chaos_spec(kind),
                columns: vec![col(format!("{}_tps", kind.name()), Metric::ThroughputTps)],
            })
            .collect(),
        workload: ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
        driver: DriverConfig {
            transactions: txns,
            offered_tps: 1_000.0,
            window_us: Some((span / 12).max(1)),
            ..DriverConfig::default()
        },
        sweep: Sweep::Fault(chaos01_fault_rows(span)),
        row_labels: None,
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Chaos 1: the model × fault grid.
pub fn chaos01_grid(txns: u64) -> ExperimentReport {
    run_plan(&chaos01_plan(txns, DEFAULT_SEED))
}

/// The think time of the closed-loop experiment (µs).
pub const CLOSED01_THINK_US: u64 = 500;

/// The client counts the closed-loop experiment sweeps.
pub const CLOSED01_CLIENTS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Closed 1 plan: the closed-loop latency/throughput knee on etcd. Each row
/// adds clients (one request in flight each, 500 µs mean think time):
/// throughput first scales with the population — Little's law,
/// `tps ≈ clients / (think + latency)` — then the apply pipeline saturates
/// and extra clients only add queueing latency. The `lat_ms` column is the
/// knee's witness; `cycle_ms` (think + latency) makes the Little's-law check
/// a one-division affair on the report.
pub fn closed01_plan(txns: u64, seed: u64) -> ExperimentPlan {
    let scenario = Scenario {
        id: "Closed 1",
        title: "etcd closed-loop knee: throughput and latency vs clients",
        systems: vec![SystemEntry {
            spec: SystemSpec::new(SystemKind::Etcd),
            columns: vec![
                col("tps", Metric::ThroughputTps),
                col("lat_ms", Metric::LatencyMeanMs),
            ],
        }],
        workload: ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
        driver: DriverConfig {
            transactions: txns,
            arrival: Some(ArrivalSpec::ClosedLoop {
                clients: 1,
                think_time_us: CLOSED01_THINK_US,
                max_outstanding: 1,
            }),
            ..DriverConfig::default()
        },
        sweep: Sweep::ClosedClients(CLOSED01_CLIENTS.to_vec()),
        row_labels: None,
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Closed 1: the closed-loop knee on etcd.
pub fn closed01_knee(txns: u64) -> ExperimentReport {
    run_plan(&closed01_plan(txns, DEFAULT_SEED))
}

/// The think time of the engine-scale experiment (µs): one simulated second
/// per client, so each client offers ~1 tps and the Little's-law knee sits
/// between the middle and top rows of [`SCALE01_CLIENTS`].
pub const SCALE01_THINK_US: u64 = 1_000_000;

/// The window width of the engine-scale experiment's streaming series (µs).
pub const SCALE01_WINDOW_US: u64 = 250_000;

/// The client populations the engine-scale experiment sweeps in full mode.
/// The top row is the point of the experiment: one million concurrent
/// closed-loop clients on a single event wheel.
pub const SCALE01_CLIENTS: [u64; 3] = [64, 8_192, 1_000_000];

/// Scale 1 plan: the closed-loop knee at engine scale. The same Little's-law
/// shape as Closed 1 — `tps ≈ clients / (think + latency)` until the apply
/// pipeline saturates — but driven across populations up to a million
/// clients with one-second think times, which only fits because the driver
/// runs [`MetricsMode::Streaming`]: receipts fold into per-window sketches
/// as they complete instead of accumulating O(transactions) vectors. Small
/// 64-byte records keep the in-flight arrival events lean at the top row.
pub fn scale01_plan(txns: u64, clients: &[u64], seed: u64) -> ExperimentPlan {
    let scenario = Scenario {
        id: "Scale 1",
        title: "etcd at engine scale: a million closed-loop clients, streaming metrics",
        systems: vec![SystemEntry {
            spec: SystemSpec::new(SystemKind::Etcd),
            columns: vec![
                col("tps", Metric::ThroughputTps),
                col("lat_ms", Metric::LatencyMeanMs),
            ],
        }],
        workload: ycsb(YcsbMix::UpdateOnly, 64, 0.0, 1),
        driver: DriverConfig {
            transactions: txns,
            arrival: Some(ArrivalSpec::ClosedLoop {
                clients: 1,
                think_time_us: SCALE01_THINK_US,
                max_outstanding: 1,
            }),
            window_us: Some(SCALE01_WINDOW_US),
            metrics: MetricsMode::Streaming,
            ..DriverConfig::default()
        },
        sweep: Sweep::ClosedClients(clients.to_vec()),
        row_labels: None,
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Scale 1: the engine-scale closed-loop knee on etcd at the full client
/// populations.
pub fn scale01_knee(txns: u64) -> ExperimentReport {
    run_plan(&scale01_plan(txns, &SCALE01_CLIENTS, DEFAULT_SEED))
}

/// The offered rates of the ramp experiment's three phases (tps).
pub const RAMP01_RATES: [f64; 3] = [200.0, 1_000.0, 8_000.0];

/// The per-phase duration (µs) that spends `txns` across the three ramp
/// phases at [`RAMP01_RATES`].
pub fn ramp01_phase_us(txns: u64) -> u64 {
    let total_rate: f64 = RAMP01_RATES.iter().sum();
    ((txns as f64 * 1e6) / total_rate).max(3.0) as u64
}

/// Ramp 1 plan: a phased open-loop ramp through Quorum's saturation point.
/// Three equal-duration phases step the offered rate 200 → 1 000 → 8 000 tps
/// against a fast-cutting small-block Quorum deployment (10 ms blocks, so
/// pipeline latency stays well inside a phase): the windowed series shows
/// offered and achieved load tracking each other in the first phase, then
/// diverging as the final phase saturates the pipeline and the windowed
/// latency inflects upward.
pub fn ramp01_plan(txns: u64, seed: u64) -> ExperimentPlan {
    let phase_us = ramp01_phase_us(txns);
    let scenario = Scenario {
        id: "Ramp 1",
        title: "Quorum under a phased open-loop ramp through saturation",
        systems: vec![SystemEntry {
            spec: SystemSpec::new(SystemKind::Quorum).with_blocks(25, 10_000),
            columns: vec![
                col("tps", Metric::ThroughputTps),
                col("lat_ms", Metric::LatencyMeanMs),
            ],
        }],
        workload: ycsb(YcsbMix::UpdateOnly, 1000, 0.0, 1),
        driver: DriverConfig {
            transactions: txns,
            arrival: Some(ArrivalSpec::Phased {
                phases: RAMP01_RATES
                    .iter()
                    .map(|&offered_tps| (phase_us, ArrivalSpec::OpenLoop { offered_tps }))
                    .collect(),
            }),
            // Four windows per phase, so the saturation inflection is
            // visible inside the series, not just across runs.
            window_us: Some((phase_us / 4).max(1)),
            ..DriverConfig::default()
        },
        sweep: Sweep::None,
        row_labels: None,
        faults: None,
        seed,
    };
    scenario.plan()
}

/// Ramp 1: the phased open-loop ramp on Quorum.
pub fn ramp01_ramp(txns: u64) -> ExperimentReport {
    run_plan(&ramp01_plan(txns, DEFAULT_SEED))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig04_preserves_the_papers_ordering() {
        let report = fig04_peak_throughput(400);
        let quorum = report.value("Quorum", "update_tps").unwrap();
        let fabric = report.value("Fabric", "update_tps").unwrap();
        let tidb = report.value("TiDB", "update_tps").unwrap();
        let etcd = report.value("etcd", "update_tps").unwrap();
        assert!(fabric > quorum, "Fabric {fabric:.0} vs Quorum {quorum:.0}");
        assert!(tidb > fabric, "TiDB {tidb:.0} vs Fabric {fabric:.0}");
        assert!(etcd > tidb, "etcd {etcd:.0} vs TiDB {tidb:.0}");
        // Query throughput exceeds update throughput everywhere.
        for sys in ["Fabric", "Quorum", "TiDB", "etcd", "TiKV"] {
            assert!(
                report.value(sys, "query_tps").unwrap() > report.value(sys, "update_tps").unwrap(),
                "{sys}"
            );
        }
        // Rendering contains every system.
        let text = report.render();
        assert!(text.contains("Quorum") && text.contains("TiKV"));
    }

    #[test]
    fn fig05_blockchain_latency_exceeds_database_latency() {
        let report = fig05_latency(60);
        let fabric = report.value("Fabric", "update_ms").unwrap();
        let quorum = report.value("Quorum", "update_ms").unwrap();
        let tidb = report.value("TiDB", "update_ms").unwrap();
        let etcd = report.value("etcd", "update_ms").unwrap();
        assert!(
            fabric > tidb && quorum > tidb,
            "fabric {fabric:.1} quorum {quorum:.1} tidb {tidb:.1}"
        );
        assert!(tidb < 100.0 && etcd < 100.0);
        // Queries are single-digit ms for blockchains, sub-ms for databases.
        assert!(
            report.value("Fabric", "query_ms").unwrap() > report.value("TiDB", "query_ms").unwrap()
        );
    }

    #[test]
    fn fig09_skew_collapses_tidb_but_not_etcd_or_quorum() {
        let report = fig09_skew(400, &[0.0, 1.0]);
        let tidb_uniform = report.value("theta=0.0", "TiDB_tps").unwrap();
        let tidb_skewed = report.value("theta=1.0", "TiDB_tps").unwrap();
        assert!(
            tidb_skewed < tidb_uniform * 0.6,
            "TiDB {tidb_uniform:.0} -> {tidb_skewed:.0}"
        );
        let etcd_uniform = report.value("theta=0.0", "etcd_tps").unwrap();
        let etcd_skewed = report.value("theta=1.0", "etcd_tps").unwrap();
        assert!(etcd_skewed > etcd_uniform * 0.7);
        // Fabric aborts grow with skew.
        let fabric_aborts_uniform = report.value("theta=0.0", "Fabric_abort_%").unwrap();
        let fabric_aborts_skewed = report.value("theta=1.0", "Fabric_abort_%").unwrap();
        assert!(fabric_aborts_skewed > fabric_aborts_uniform);
    }

    #[test]
    fn fig13_mpt_overhead_dwarfs_mbt_overhead() {
        let report = fig13_adr_overhead(2_000, &[10, 1000]);
        for size in ["10 B", "1000 B"] {
            let mbt = report.value(size, "MBT_B/rec").unwrap();
            let mpt = report.value(size, "MPT_B/rec").unwrap();
            assert!(mpt > mbt + 500.0, "{size}: MBT {mbt:.0} vs MPT {mpt:.0}");
        }
    }

    #[test]
    fn fig15_report_covers_all_six_hybrids() {
        let report = fig15_hybrid_forecast();
        assert_eq!(report.rows.len(), 6);
        let veritas = report.value("Veritas", "forecast_tps").unwrap();
        let chainify = report.value("ChainifyDB", "forecast_tps").unwrap();
        assert!(veritas > chainify);
    }

    #[test]
    fn same_seed_reproduces_reports_different_seeds_may_differ() {
        // Same seed: rows agree bit for bit, across a plan that exercises
        // system, workload and driver seeds.
        let a = run_plan(&fig06_plan(120, 1234));
        let b = run_plan(&fig06_plan(120, 1234));
        assert_eq!(a.rows, b.rows);
        // A different seed changes the measured numbers (the structure —
        // labels and columns — is identical).
        let c = run_plan(&fig06_plan(120, 99));
        assert_eq!(
            a.rows.iter().map(|r| &r.label).collect::<Vec<_>>(),
            c.rows.iter().map(|r| &r.label).collect::<Vec<_>>()
        );
        assert_ne!(a.rows, c.rows, "different seeds should perturb the rows");
    }

    #[test]
    fn saturating_probes_report_a_nonempty_windowed_series() {
        // The Fabric peak-throughput probe of Figure 4: its report row must
        // carry windowed time-series data (one series per driving probe).
        let report = fig04_peak_throughput(200);
        let fabric = report.rows.iter().find(|r| r.label == "Fabric").unwrap();
        assert_eq!(fabric.series.len(), 2, "update + query probes");
        assert!(
            fabric.series.iter().all(|s| !s.series.is_empty()),
            "saturation runs must produce windows"
        );
        assert!(fabric.series[0]
            .series
            .windows
            .iter()
            .any(|w| w.committed > 0));
    }

    #[test]
    fn fault01_shows_the_crash_dip_and_the_recovery_in_the_windows() {
        let txns = 600;
        let report = fault01_crash_recovery(txns);
        assert!(report.value("etcd", "tps").unwrap() > 0.0);
        let series = &report.rows[0].series[0].series;
        assert!(!series.is_empty());
        let span = fault01_span_us(txns);
        let (crash_from, crash_until) = (span / 3, 2 * span / 3);
        let before = series.window_at(crash_from / 2).unwrap();
        let during = series.window_at((crash_from + crash_until) / 2).unwrap();
        assert!(before.committed > 0, "healthy windows commit");
        assert_eq!(during.committed, 0, "mid-crash window must stall");
        // Recovery: once the crash heals (plus failover), the stalled backlog
        // bursts through — some post-heal window beats the pre-crash rate.
        let recovered = series
            .windows
            .iter()
            .filter(|w| w.start_us >= crash_until)
            .map(|w| w.committed)
            .max()
            .unwrap_or(0);
        assert!(
            recovered > before.committed,
            "post-heal burst {recovered} should exceed pre-crash {}",
            before.committed
        );
    }

    #[test]
    fn plans_are_data_probe_counts_match_the_grids() {
        assert_eq!(fig04_plan(10, 1).probe_count(), 10); // 5 systems × 2 workloads
        assert_eq!(fig07_plan(10, 1).probe_count(), 8); // 4 f-values × 2 protocols
        assert_eq!(fig09_plan(10, &[0.0, 1.0], 1).probe_count(), 8); // 2 thetas × 4 systems
        assert_eq!(tab04_plan(10, &[3, 7], 1).probe_count(), 8); // 4 systems × 2 node counts
        assert_eq!(tab02_plan().probe_count(), 0);
        assert_eq!(closed01_plan(10, 1).probe_count(), CLOSED01_CLIENTS.len());
        assert_eq!(ramp01_plan(10, 1).probe_count(), 1);
        assert_eq!(chaos01_plan(10, 1).probe_count(), 42); // 6 fault rows × 7 models
    }

    #[test]
    fn chaos01_rows_are_the_fault_schedules_and_cells_carry_each_plan() {
        let plan = chaos01_plan(50, 1);
        let labels: Vec<_> = plan.rows.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "baseline",
                "primary-crash",
                "shard-crash",
                "failover",
                "partition",
                "reconfig"
            ]
        );
        // Every cell of a fault row carries that row's schedule; the
        // baseline row carries an empty one.
        for row in &plan.rows {
            for run in &row.runs {
                let Probe::Drive { system, .. } = &run.probe else {
                    panic!("chaos cells are drive probes");
                };
                let faults = system.faults.as_ref().expect("fault axis always sets one");
                assert_eq!(faults.is_empty(), row.label == "baseline", "{}", row.label);
            }
        }
    }

    #[test]
    fn chaos01_passes_every_oracle_and_shows_dip_and_recovery() {
        let txns = 420;
        let report = chaos01_grid(txns);
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        // Every cell of the grid reports the full oracle battery, passing.
        for row in &report.rows {
            assert_eq!(row.series.len(), SystemKind::ALL.len(), "{}", row.label);
            for s in &row.series {
                assert_eq!(s.oracles.outcomes.len(), 4, "{} / {}", row.label, s.name);
                assert!(
                    s.oracles.passed(),
                    "{} / {}: {:?}",
                    row.label,
                    s.name,
                    s.oracles
                );
            }
        }
        // The dip/recovery signature on the etcd × primary-crash cell: a
        // healthy window before the crash, a stalled window inside it, and a
        // post-heal backlog burst beating the pre-crash rate.
        let span = chaos01_span_us(txns);
        let crash_row = report
            .rows
            .iter()
            .find(|r| r.label == "primary-crash")
            .unwrap();
        let etcd = crash_row.series.iter().find(|s| s.name == "etcd").unwrap();
        let before = etcd.series.window_at(span / 6).unwrap();
        let during = etcd.series.window_at(span / 2).unwrap();
        assert!(before.committed > 0, "pre-crash windows commit");
        assert_eq!(during.committed, 0, "mid-crash window must stall");
        let recovered = etcd
            .series
            .windows
            .iter()
            .filter(|w| w.start_us >= 2 * span / 3)
            .map(|w| w.committed)
            .max()
            .unwrap_or(0);
        assert!(
            recovered > before.committed,
            "post-heal burst {recovered} should exceed pre-crash {}",
            before.committed
        );
        // The baseline row has no dip anywhere near the crash window.
        let baseline = report.rows.iter().find(|r| r.label == "baseline").unwrap();
        let etcd_base = baseline.series.iter().find(|s| s.name == "etcd").unwrap();
        assert!(etcd_base.series.window_at(span / 2).unwrap().committed > 0);
    }

    #[test]
    fn closed01_obeys_littles_law_and_shows_the_latency_knee() {
        let report = closed01_knee(1_200);
        let think_s = CLOSED01_THINK_US as f64 / 1e6;
        for clients in CLOSED01_CLIENTS {
            let row = format!("{clients} clients");
            let tps = report.value(&row, "tps").unwrap();
            let latency_s = report.value(&row, "lat_ms").unwrap() / 1e3;
            // Little's law for a closed system: the measured throughput must
            // match clients / (think + latency). Finite-run transients (the
            // first think pause, the final drain) bound the tolerance.
            let predicted = clients as f64 / (think_s + latency_s);
            let ratio = tps / predicted;
            assert!(
                (0.75..=1.25).contains(&ratio),
                "{row}: tps {tps:.0} vs Little's-law {predicted:.0} (ratio {ratio:.2})"
            );
        }
        // The knee: throughput keeps (weakly) growing with the population...
        let tps_at = |c: u64| report.value(&format!("{c} clients"), "tps").unwrap();
        let lat_at = |c: u64| report.value(&format!("{c} clients"), "lat_ms").unwrap();
        for pair in CLOSED01_CLIENTS.windows(2) {
            assert!(
                tps_at(pair[1]) > tps_at(pair[0]) * 0.9,
                "throughput collapsed between {} and {} clients",
                pair[0],
                pair[1]
            );
        }
        // ...but saturation makes the largest population pay visibly more
        // latency than a lone client, and its per-client rate collapses.
        assert!(
            lat_at(64) > lat_at(1) * 2.0,
            "no knee: lat(64)={} vs lat(1)={}",
            lat_at(64),
            lat_at(1)
        );
        assert!(
            tps_at(64) < 64.0 * tps_at(1) * 0.7,
            "64 clients should be past the linear-scaling regime"
        );
    }

    #[test]
    fn ramp01_crosses_saturation_inside_the_windowed_series() {
        let txns = 600;
        let report = ramp01_ramp(txns);
        assert_eq!(report.rows.len(), 1);
        assert!(report.failures.is_empty());
        let series = &report.rows[0].series[0].series;
        let phase_us = ramp01_phase_us(txns);
        // Offered load tracks the configured phase rates: the mid-window of
        // each phase must carry roughly its rate.
        let offered_mid = |phase: u64| {
            series
                .window_at(phase * phase_us + phase_us / 2)
                .map(|w| w.offered_tps)
                .unwrap_or(0.0)
        };
        assert!(
            offered_mid(2) > offered_mid(0) * 5.0,
            "the ramp must be visible in the offered series: {} vs {}",
            offered_mid(0),
            offered_mid(2)
        );
        // Phase 1 is unsaturated: achieved ≈ offered over the whole phase.
        let phase_totals = |phase: u64| {
            let (from, to) = (phase * phase_us, (phase + 1) * phase_us);
            series
                .windows
                .iter()
                .filter(|w| w.start_us >= from && w.end_us <= to)
                .fold((0u64, 0u64), |(s, c), w| (s + w.submitted, c + w.committed))
        };
        let (submitted_1, committed_1) = phase_totals(0);
        assert!(submitted_1 > 0);
        assert!(
            committed_1 as f64 >= submitted_1 as f64 * 0.5,
            "phase 1 should keep up: {committed_1}/{submitted_1}"
        );
        // Phase 3 saturates: offered outruns achieved while arrivals flow.
        let (submitted_3, committed_3) = phase_totals(2);
        assert!(
            submitted_3 > committed_3 * 2,
            "phase 3 should backlog: {committed_3}/{submitted_3}"
        );
        // The latency inflection: windowed p50 late in the ramp dwarfs the
        // unsaturated start.
        let early_p50 = series
            .windows
            .iter()
            .filter(|w| w.end_us <= phase_us && w.committed > 0)
            .map(|w| w.latency.p50_us)
            .max()
            .unwrap_or(0);
        let late_p50 = series
            .windows
            .iter()
            .filter(|w| w.start_us >= 2 * phase_us && w.committed > 0)
            .map(|w| w.latency.p50_us)
            .max()
            .unwrap_or(0);
        assert!(early_p50 > 0, "phase 1 must commit inside its windows");
        assert!(
            late_p50 > early_p50 * 3,
            "saturation must inflect the windowed latency: {early_p50} → {late_p50}"
        );
        // The scalar columns exist too.
        assert!(report.rows[0]
            .values
            .iter()
            .any(|(c, v)| c == "tps" && *v > 0.0));
    }
}
