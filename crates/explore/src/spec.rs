//! The declarative exploration grid: [`ExploreSpec`] names the axes, a
//! deterministic generator walks them, and the forecast model prunes the
//! candidates before anything executes.
//!
//! Enumeration is a plain nested loop in a fixed axis order (kind → nodes →
//! shards → block cut → consensus → record size → θ → arrival), so the same
//! spec always yields the same candidate list, byte for byte. Axes that a
//! kind ignores collapse to a single default value instead of multiplying
//! the grid by dead configurations ([`SystemKind::cuts_blocks`],
//! [`SystemKind::shards_scale`]). When the grid outgrows
//! [`max_candidates`](ExploreSpec::max_candidates), a seeded partial
//! Fisher–Yates picks the tail — still a pure function of the spec.

use std::collections::BTreeMap;

use dichotomy_common::rng::{seeded, Rng};
use dichotomy_common::{Diagnostic, Severity};
use dichotomy_consensus::ProtocolKind;
use dichotomy_hybrid::{try_forecast_throughput, ForecastError, HybridSpec};
use dichotomy_simnet::{CostModel, NetworkConfig};
use dichotomy_systems::{SystemKind, SystemSpec};
use dichotomy_workload::{WorkloadSpec, YcsbConfig, YcsbMix};

/// One point on the workload's arrival axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKnob {
    /// Open loop at a fixed offered rate.
    Open {
        /// Offered load, transactions per second of simulated time.
        offered_tps: f64,
    },
    /// Closed loop: `clients` clients, 1 ms think time, one outstanding
    /// request each (the `repro --arrival closed` defaults).
    Closed {
        /// Number of closed-loop clients.
        clients: u64,
    },
}

impl ArrivalKnob {
    /// Short deterministic label for candidate names.
    pub fn slug(&self) -> String {
        match self {
            ArrivalKnob::Open { offered_tps } => format!("open{offered_tps:.0}"),
            ArrivalKnob::Closed { clients } => format!("closed{clients}"),
        }
    }
}

/// The forecast-pruning thresholds.
///
/// A candidate survives when its forecast throughput clears **both** bars:
///
/// * `keep_frac` — the *dominance* bar: at least this fraction of the best
///   forecast among candidates sharing the same workload point (record
///   size, θ, arrival). A design forecast far below a rival on the *same*
///   workload is dominated-by-forecast and not worth measuring.
/// * `min_forecast_tps` — an absolute floor, independent of rivals.
///
/// Raising either threshold can only shrink the survivor set (pruning is
/// monotone), and a threshold pair that eliminates *every* candidate is a
/// spec bug the `S008` lint denies before anything runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneSpec {
    /// Keep candidates forecast at ≥ this fraction of their workload
    /// group's best forecast. `0.0` disables the dominance bar.
    pub keep_frac: f64,
    /// Keep candidates forecast at ≥ this absolute rate. `0.0` disables.
    pub min_forecast_tps: f64,
}

impl Default for PruneSpec {
    fn default() -> Self {
        PruneSpec {
            keep_frac: 0.25,
            min_forecast_tps: 0.0,
        }
    }
}

/// The declarative design grid: `SystemSpec` knobs × workload axes.
#[derive(Debug, Clone)]
pub struct ExploreSpec {
    /// System kinds to enumerate.
    pub kinds: Vec<SystemKind>,
    /// Replica counts.
    pub nodes: Vec<usize>,
    /// Shard counts; `0` means the kind's unsharded default. Collapses to
    /// `[0]` for kinds that ignore the knob.
    pub shards: Vec<u32>,
    /// Block-cut points `(block_txns, block_interval_us)`. Collapses to a
    /// single default for kinds that do not batch into blocks.
    pub block_cuts: Vec<(usize, u64)>,
    /// Consensus profile overrides; `None` keeps the kind's default.
    pub consensus: Vec<Option<ProtocolKind>>,
    /// YCSB record sizes in bytes.
    pub record_sizes: Vec<usize>,
    /// Zipfian skew values.
    pub thetas: Vec<f64>,
    /// Arrival-process points.
    pub arrivals: Vec<ArrivalKnob>,
    /// Transactions per measured probe.
    pub txns: u64,
    /// The seed threaded through sampling, workloads and drivers.
    pub seed: u64,
    /// Cap on the number of enumerated candidates; beyond it a seeded
    /// sample of the grid is taken (and the drop is reported, never
    /// silent). `None` enumerates the whole grid.
    pub max_candidates: Option<usize>,
    /// The forecast-pruning thresholds.
    pub prune: PruneSpec,
}

impl ExploreSpec {
    /// The smoke-scale grid `repro explore --quick` walks: every kind, one
    /// deployment point, two skew values — small enough for CI, wide enough
    /// that the Pareto front and calibration report are non-trivial.
    pub fn quick(txns: u64, seed: u64) -> Self {
        ExploreSpec {
            kinds: SystemKind::ALL.to_vec(),
            nodes: vec![4],
            shards: vec![0],
            block_cuts: vec![(25, 10_000)],
            consensus: vec![None],
            record_sizes: vec![1_000],
            thetas: vec![0.5, 0.9],
            arrivals: vec![ArrivalKnob::Open {
                offered_tps: 1_000.0,
            }],
            txns,
            seed,
            max_candidates: None,
            prune: PruneSpec::default(),
        }
    }

    /// The full grid: scale, sharding, block-cut, record-size, skew and
    /// arrival axes. Larger than the default candidate cap on purpose — the
    /// seeded tail sampling is part of the exercised surface.
    pub fn full(txns: u64, seed: u64) -> Self {
        ExploreSpec {
            kinds: SystemKind::ALL.to_vec(),
            nodes: vec![4, 8],
            shards: vec![0, 4],
            block_cuts: vec![(25, 10_000), (100, 100_000)],
            consensus: vec![None],
            record_sizes: vec![100, 1_000],
            thetas: vec![0.5, 0.99],
            arrivals: vec![
                ArrivalKnob::Open {
                    offered_tps: 1_000.0,
                },
                ArrivalKnob::Closed { clients: 32 },
            ],
            txns,
            seed,
            max_candidates: Some(96),
            prune: PruneSpec::default(),
        }
    }
}

/// One enumerated design point, forecast-scored and ready to measure.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Deterministic unique name, e.g. `fabric/n4/b25@10000/c-default/rs1000/t0.50/open1000`.
    pub name: String,
    /// The system half of the design.
    pub system: SystemSpec,
    /// The workload half (record size, θ, seed applied).
    pub workload: WorkloadSpec,
    /// The arrival-axis point.
    pub arrival: ArrivalKnob,
    /// Taxonomy cell, `replication|protocol|concurrency`.
    pub cell: String,
    /// Forecast peak throughput (tps), always finite and positive.
    pub forecast_tps: f64,
    /// The forecast inverted into µs per transaction.
    pub forecast_cost_us: f64,
    /// Workload-point key used for dominance grouping during pruning.
    pub(crate) workload_point: String,
}

impl Candidate {
    /// One-line stable description — the unit the determinism tests
    /// compare byte-for-byte.
    pub fn describe(&self) -> String {
        format!(
            "{} cell={} forecast_tps={:.3} forecast_cost_us={:.3}",
            self.name, self.cell, self.forecast_tps, self.forecast_cost_us
        )
    }
}

/// Map a `SystemSpec` through its taxonomy point into the forecast model's
/// [`HybridSpec`] — the same mapping the probe scheduler's cost predictor
/// uses, minus its defensive clamps: the explorer wants degenerate knobs to
/// surface as [`ForecastError`]s, not to be silently repaired.
pub fn hybrid_spec_for(system: &SystemSpec, record_size: usize, ops_per_txn: usize) -> HybridSpec {
    let taxonomy = system.taxonomy();
    HybridSpec {
        name: system.label(),
        replication: taxonomy.replication,
        protocol: taxonomy.protocol,
        concurrency: taxonomy.concurrency,
        nodes: system.nodes.unwrap_or(4),
        txn_bytes: record_size * ops_per_txn,
        batch_size: system.block_txns.unwrap_or(500),
    }
}

/// A candidate the generator could not score: its name and the structured
/// forecast error (never a NaN reaching a comparator).
#[derive(Debug, Clone, PartialEq)]
pub struct EnumerateError {
    /// The candidate that failed to score.
    pub candidate: String,
    /// Why the forecast rejected it.
    pub error: ForecastError,
}

impl std::fmt::Display for EnumerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "candidate '{}': {}", self.candidate, self.error)
    }
}

/// The result of walking the grid: the scored candidates plus how many grid
/// points the tail sampling dropped (0 when the grid fit under the cap).
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// Scored candidates, in enumeration order.
    pub candidates: Vec<Candidate>,
    /// Size of the grid before tail sampling.
    pub grid_points: usize,
    /// Grid points dropped by the seeded tail sampling.
    pub sampled_out: usize,
}

/// Walk the spec's design grid in the fixed axis order and score every
/// point with the checked forecast. Deterministic: same spec (including
/// seed) ⇒ byte-identical candidate list.
pub fn enumerate(spec: &ExploreSpec) -> Result<Enumeration, EnumerateError> {
    let mut candidates = Vec::new();
    for &kind in &spec.kinds {
        for &nodes in &spec.nodes {
            let shard_axis: &[u32] = if kind.shards_scale() {
                &spec.shards
            } else {
                &[0]
            };
            for &shards in shard_axis {
                let block_axis: &[(usize, u64)] = if kind.cuts_blocks() {
                    &spec.block_cuts
                } else {
                    &[(0, 0)]
                };
                for &(block_txns, block_interval_us) in block_axis {
                    for &consensus in &spec.consensus {
                        for &record_size in &spec.record_sizes {
                            for &theta in &spec.thetas {
                                for &arrival in &spec.arrivals {
                                    candidates.push(candidate(
                                        spec,
                                        kind,
                                        nodes,
                                        shards,
                                        (block_txns, block_interval_us),
                                        consensus,
                                        record_size,
                                        theta,
                                        arrival,
                                    )?);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    let grid_points = candidates.len();
    let sampled_out = match spec.max_candidates {
        Some(cap) if grid_points > cap => {
            candidates = sample(candidates, cap, spec.seed);
            grid_points - cap
        }
        _ => 0,
    };
    Ok(Enumeration {
        candidates,
        grid_points,
        sampled_out,
    })
}

#[allow(clippy::too_many_arguments)]
fn candidate(
    spec: &ExploreSpec,
    kind: SystemKind,
    nodes: usize,
    shards: u32,
    (block_txns, block_interval_us): (usize, u64),
    consensus: Option<ProtocolKind>,
    record_size: usize,
    theta: f64,
    arrival: ArrivalKnob,
) -> Result<Candidate, EnumerateError> {
    let mut name = format!("{}/n{nodes}", kind.slug());
    let mut system = SystemSpec::new(kind).with_nodes(nodes);
    if shards > 0 {
        system = system.with_shards(shards);
        name.push_str(&format!("/s{shards}"));
    }
    if kind.cuts_blocks() {
        system = system.with_blocks(block_txns, block_interval_us);
        name.push_str(&format!("/b{block_txns}@{block_interval_us}"));
    }
    if let Some(protocol) = consensus {
        system = system.with_consensus(protocol);
        name.push_str(&format!("/{protocol:?}").to_lowercase());
    }
    name.push_str(&format!("/rs{record_size}/t{theta:.2}/{}", arrival.slug()));
    let system = system.with_label(name.clone()).with_seed(spec.seed);

    let workload = WorkloadSpec::Ycsb(YcsbConfig {
        record_count: 5_000,
        record_size,
        zipf_theta: theta,
        ops_per_txn: 1,
        mix: YcsbMix::UpdateOnly,
        seed: spec.seed,
        ..YcsbConfig::default()
    });

    let taxonomy = system.taxonomy();
    let cell = format!(
        "{:?}|{:?}|{:?}",
        taxonomy.replication, taxonomy.protocol, taxonomy.concurrency
    );
    let hybrid = hybrid_spec_for(&system, record_size, 1);
    let network = system
        .network
        .clone()
        .unwrap_or_else(NetworkConfig::lan_1gbps);
    let costs = system.costs.clone().unwrap_or_else(CostModel::calibrated);
    let forecast_tps =
        try_forecast_throughput(&hybrid, &network, &costs).map_err(|error| EnumerateError {
            candidate: name.clone(),
            error,
        })?;
    let workload_point = format!("rs{record_size}/t{theta:.2}/{}", arrival.slug());
    Ok(Candidate {
        name,
        system,
        workload,
        arrival,
        cell,
        forecast_tps,
        forecast_cost_us: 1e6 / forecast_tps.max(1.0),
        workload_point,
    })
}

/// Seeded sampling of the combinatorial tail: a partial Fisher–Yates over
/// the candidate indices picks `cap` of them, then enumeration order is
/// restored so downstream stages stay order-deterministic.
fn sample(candidates: Vec<Candidate>, cap: usize, seed: u64) -> Vec<Candidate> {
    let mut rng = seeded(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut indices: Vec<usize> = (0..candidates.len()).collect();
    for i in 0..cap {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    indices.truncate(cap);
    indices.sort_unstable();
    let mut picked: Vec<Option<Candidate>> = candidates.into_iter().map(Some).collect();
    indices
        .into_iter()
        .map(|i| picked[i].take().expect("indices are distinct"))
        .collect()
}

/// The pruning verdict: survivors in enumeration order, plus the cut list
/// (also in enumeration order) so callers can log every drop.
#[derive(Debug, Clone)]
pub struct Pruned {
    /// Candidates that cleared both bars.
    pub survivors: Vec<Candidate>,
    /// Candidates cut by the forecast, with the group-best forecast that
    /// dominated each.
    pub cut: Vec<(Candidate, f64)>,
}

/// Apply the forecast-pruning thresholds. Dominance groups are workload
/// points: a candidate competes only against designs measured under the
/// same record size, skew and arrival process.
pub fn prune(candidates: &[Candidate], prune: &PruneSpec) -> Pruned {
    let mut group_best: BTreeMap<&str, f64> = BTreeMap::new();
    for c in candidates {
        let best = group_best.entry(c.workload_point.as_str()).or_insert(0.0);
        if c.forecast_tps > *best {
            *best = c.forecast_tps;
        }
    }
    let mut survivors = Vec::new();
    let mut cut = Vec::new();
    for c in candidates {
        let best = group_best[c.workload_point.as_str()];
        if c.forecast_tps >= prune.keep_frac * best && c.forecast_tps >= prune.min_forecast_tps {
            survivors.push(c.clone());
        } else {
            cut.push((c.clone(), best));
        }
    }
    Pruned { survivors, cut }
}

/// Lint an [`ExploreSpec`] before execution. `S008` (deny): the spec
/// explores nothing — empty axes, a grid point the forecast rejects, or
/// pruning thresholds that eliminate every candidate. Shares the
/// [`Diagnostic`] model (and exit-code policy) with the `S0xx` plan linter.
pub fn lint_spec(spec: &ExploreSpec) -> Vec<Diagnostic> {
    let zero_survivors = |why: String| {
        vec![Diagnostic::new(
            "S008",
            Severity::Deny,
            format!("zero-survivor exploration: {why}"),
        )
        .with_help("widen the grid axes or lower keep_frac / min_forecast_tps")
        .at_plan("explore", "", "")]
    };
    let enumeration = match enumerate(spec) {
        Ok(e) => e,
        Err(e) => return zero_survivors(format!("the grid cannot be scored ({e})")),
    };
    if enumeration.candidates.is_empty() {
        return zero_survivors("the grid axes enumerate no candidate".to_string());
    }
    let pruned = prune(&enumeration.candidates, &spec.prune);
    if pruned.survivors.is_empty() {
        return zero_survivors(format!(
            "the prune thresholds (keep_frac {}, min_forecast_tps {}) cut all {} candidates",
            spec.prune.keep_frac,
            spec.prune.min_forecast_tps,
            enumeration.candidates.len()
        ));
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExploreSpec {
        ExploreSpec::quick(300, 7)
    }

    #[test]
    fn enumeration_is_deterministic_per_seed() {
        let a = enumerate(&quick()).unwrap();
        let b = enumerate(&quick()).unwrap();
        let lines = |e: &Enumeration| {
            e.candidates
                .iter()
                .map(Candidate::describe)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(lines(&a), lines(&b), "same seed ⇒ byte-identical list");
        assert_eq!(a.grid_points, 14, "7 kinds × 2 thetas");
        assert_eq!(a.sampled_out, 0);

        // The grid (names, forecasts) is seed-independent; the seed reaches
        // the *specs* the candidates will execute with.
        let mut reseeded = quick();
        reseeded.seed = 8;
        let c = enumerate(&reseeded).unwrap();
        assert_eq!(
            lines(&a),
            lines(&c),
            "grid shape does not depend on the seed"
        );
        assert_eq!(a.candidates[0].workload.seed(), 7);
        assert_eq!(c.candidates[0].workload.seed(), 8);
    }

    #[test]
    fn tail_sampling_is_seeded_and_order_preserving() {
        let mut spec = quick();
        spec.max_candidates = Some(5);
        let a = enumerate(&spec).unwrap();
        let b = enumerate(&spec).unwrap();
        assert_eq!(a.candidates.len(), 5);
        assert_eq!(a.sampled_out, 9);
        let names = |e: &Enumeration| {
            e.candidates
                .iter()
                .map(|c| c.name.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b));
        // Sampled candidates keep the full grid's enumeration order.
        let full = enumerate(&quick()).unwrap();
        let full_names = names(&full);
        let mut last = 0;
        for n in names(&a) {
            let at = full_names.iter().position(|f| f == &n).unwrap();
            assert!(at >= last, "sampling must preserve enumeration order");
            last = at;
        }
    }

    #[test]
    fn degenerate_axes_surface_as_structured_errors() {
        let mut spec = quick();
        spec.nodes = vec![0];
        let err = enumerate(&spec).unwrap_err();
        assert_eq!(err.error, ForecastError::ZeroNodes);
        assert!(err.to_string().contains("zero ordering nodes"));
    }

    #[test]
    fn pruning_is_monotone_in_both_thresholds() {
        let cands = enumerate(&quick()).unwrap().candidates;
        let survivors = |keep_frac: f64, min_tps: f64| {
            prune(
                &cands,
                &PruneSpec {
                    keep_frac,
                    min_forecast_tps: min_tps,
                },
            )
            .survivors
            .iter()
            .map(|c| c.name.clone())
            .collect::<Vec<_>>()
        };
        let fracs = [0.0, 0.1, 0.25, 0.5, 0.9, 1.0];
        for w in fracs.windows(2) {
            let (lo, hi) = (survivors(w[0], 0.0), survivors(w[1], 0.0));
            assert!(
                hi.iter().all(|n| lo.contains(n)),
                "raising keep_frac {}→{} added a survivor",
                w[0],
                w[1]
            );
        }
        let floors = [0.0, 10.0, 1_000.0, 1e6, 1e12];
        for w in floors.windows(2) {
            let (lo, hi) = (survivors(0.0, w[0]), survivors(0.0, w[1]));
            assert!(
                hi.iter().all(|n| lo.contains(n)),
                "raising min_forecast_tps {}→{} added a survivor",
                w[0],
                w[1]
            );
        }
        // Every cut is accounted for: survivors + cut = candidates.
        let p = prune(&cands, &PruneSpec::default());
        assert_eq!(p.survivors.len() + p.cut.len(), cands.len());
    }

    #[test]
    fn s008_denies_zero_survivor_specs_and_passes_live_ones() {
        assert!(lint_spec(&quick()).is_empty());

        let mut all_cut = quick();
        all_cut.prune.min_forecast_tps = 1e30;
        let diags = lint_spec(&all_cut);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "S008");
        assert_eq!(diags[0].severity, Severity::Deny);
        assert!(diags[0].message.contains("zero-survivor"));

        let mut empty = quick();
        empty.kinds.clear();
        assert_eq!(lint_spec(&empty)[0].code, "S008");

        let mut unscorable = quick();
        unscorable.nodes = vec![0];
        let diags = lint_spec(&unscorable);
        assert_eq!(diags[0].code, "S008");
        assert!(diags[0].message.contains("cannot be scored"));
    }
}
