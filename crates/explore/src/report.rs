//! From survivors to a report: the measurement plan, the measured designs,
//! the Pareto front and the calibration summary.
//!
//! Each surviving candidate becomes one plan row backed by two probes:
//!
//! * a **perf probe** — the candidate driven under its own arrival knob,
//!   contributing the `tps` and `p99_ms` columns;
//! * a **chaos probe** — the same system with a primary-crash schedule
//!   (the chaos grid's `primary-crash` row) under a windowed 1 000 tps
//!   open loop, contributing the fault-recovery time read off the stalled
//!   windows of its time series.
//!
//! The plan runs through [`run_plans_with`], so probe deduplication, the
//! persistent result cache and LPT scheduling all apply — re-exploring a
//! grid is warm-cache cheap, and output is byte-identical across worker
//! counts.

use std::fmt::Write as _;

use dichotomy_common::NodeId;
use dichotomy_core::experiments::chaos01_span_us;
use dichotomy_core::metrics::TimeSeries;
use dichotomy_core::scenario::{
    predicted_probe_cost, run_plans_with, ColumnSpec, ExecOptions, ExperimentPlan, Metric,
    PlanOutcome, PlannedRow, PlannedRun, Probe,
};
use dichotomy_core::{ArrivalSpec, DriverConfig};
use dichotomy_simnet::{FaultPlan, NodeFault};
use dichotomy_systems::SystemRegistry;

use crate::calib::{kendall_tau, per_cell_calibration, CellCalibration};
use crate::pareto::pareto_front;
use crate::spec::{enumerate, prune, ArrivalKnob, Candidate, EnumerateError, ExploreSpec};

/// Plan id under which the explorer's probes run (and cache).
pub const PLAN_ID: &str = "Explore 1";

/// One measured design point.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// The candidate's deterministic name.
    pub name: String,
    /// Taxonomy cell, `replication|protocol|concurrency`.
    pub cell: String,
    /// The forecast that let it through the prune.
    pub forecast_tps: f64,
    /// Measured throughput (tps); NaN if the probe failed.
    pub measured_tps: f64,
    /// Measured p99 latency (ms); NaN if the probe failed.
    pub p99_ms: f64,
    /// Fault-recovery time (ms): the span of the stalled windows under the
    /// primary-crash schedule, 0 when the design never stalls.
    pub recovery_ms: f64,
    /// Whether the design is Pareto-optimal over
    /// (max tps, min p99, min recovery).
    pub on_front: bool,
}

/// A candidate the forecast cut before execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CutDesign {
    /// The candidate's name.
    pub name: String,
    /// Its forecast throughput.
    pub forecast_tps: f64,
    /// The best forecast in its workload group — what dominated it.
    pub group_best_tps: f64,
}

/// Everything `repro explore` reports.
#[derive(Debug, Clone)]
pub struct ExploreOutcome {
    /// Grid size before tail sampling.
    pub grid_points: usize,
    /// Grid points dropped by the seeded tail sampling.
    pub sampled_out: usize,
    /// Candidates the forecast pruned (never executed), in enumeration
    /// order — the cut is logged, never silent.
    pub cut: Vec<CutDesign>,
    /// The measured designs, in enumeration order.
    pub designs: Vec<Design>,
    /// Kendall's τ between forecast and measured throughput rankings
    /// (NaN below two measured designs).
    pub kendall_tau: f64,
    /// Per-taxonomy-cell forecast error and fitted correction.
    pub cells: Vec<CellCalibration>,
    /// `(probe label, predicted cost)` for every scheduled probe, in plan
    /// order — the deterministic half of the scheduler's calibration feed
    /// (the measured walls live in [`PlanOutcome::calibration`]).
    pub scheduling: Vec<(String, f64)>,
    /// The underlying plan execution: wall, dedup/cache counters and the
    /// scheduler's predicted-vs-actual probe calibration.
    pub plan: PlanOutcome,
}

/// The primary-crash fault schedule the chaos probes run: the chaos grid's
/// `primary-crash` row over the same arrival span.
fn primary_crash(span: u64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    plan.add(NodeFault::crash_until(NodeId(0), span / 3, 2 * span / 3));
    plan
}

/// Build the measurement plan: one row per survivor, a perf probe and a
/// chaos probe each.
pub fn measurement_plan(survivors: &[Candidate], txns: u64, seed: u64) -> ExperimentPlan {
    let span = chaos01_span_us(txns);
    let rows = survivors
        .iter()
        .map(|c| {
            let arrival = match c.arrival {
                ArrivalKnob::Open { offered_tps } => ArrivalSpec::OpenLoop { offered_tps },
                ArrivalKnob::Closed { clients } => ArrivalSpec::ClosedLoop {
                    clients,
                    think_time_us: 1_000,
                    max_outstanding: 1,
                },
            };
            let perf = PlannedRun {
                probe: Probe::Drive {
                    system: c.system.clone(),
                    workload: c.workload.clone(),
                    driver: DriverConfig {
                        transactions: txns,
                        ..DriverConfig::default()
                    }
                    .with_seed(seed)
                    .with_arrival(arrival),
                },
                columns: vec![
                    ColumnSpec::new("tps", Metric::ThroughputTps),
                    ColumnSpec::new("p99_ms", Metric::LatencyP99Ms),
                ],
            };
            let chaos = PlannedRun {
                probe: Probe::Drive {
                    system: c
                        .system
                        .clone()
                        .with_label(format!("{}#chaos", c.name))
                        .with_faults(primary_crash(span)),
                    workload: c.workload.clone(),
                    driver: DriverConfig {
                        transactions: txns,
                        ..DriverConfig::default()
                    }
                    .with_seed(seed)
                    .with_arrival(ArrivalSpec::OpenLoop {
                        offered_tps: 1_000.0,
                    })
                    .with_window((span / 12).max(1)),
                },
                columns: Vec::new(),
            };
            PlannedRow {
                label: c.name.clone(),
                runs: vec![perf, chaos],
            }
        })
        .collect();
    ExperimentPlan {
        id: PLAN_ID,
        title: "design-space exploration: forecast-pruned survivors, measured",
        rows,
        text: None,
        diagnostics: Vec::new(),
    }
}

/// Fault-recovery time off a chaos probe's windowed series: the span from
/// the first to the last *stalled* window (offered load arriving, nothing
/// committing), in milliseconds. A design that never stalls recovers in 0.
pub fn recovery_time_ms(series: &TimeSeries) -> f64 {
    let mut stalled = series
        .windows
        .iter()
        .filter(|w| w.submitted > 0 && w.committed == 0);
    match stalled.next() {
        None => 0.0,
        Some(first) => {
            let last = stalled.next_back().unwrap_or(first);
            (last.end_us.saturating_sub(first.start_us)) as f64 / 1_000.0
        }
    }
}

/// Enumerate, prune, measure and report. The spec's full pipeline; `repro
/// explore` is a thin flag-parser around this.
pub fn run_explore(
    spec: &ExploreSpec,
    registry: &SystemRegistry,
    options: &ExecOptions,
) -> Result<ExploreOutcome, EnumerateError> {
    let enumeration = enumerate(spec)?;
    let pruned = prune(&enumeration.candidates, &spec.prune);
    let plan = measurement_plan(&pruned.survivors, spec.txns, spec.seed);
    let scheduling: Vec<(String, f64)> = plan
        .rows
        .iter()
        .flat_map(|r| &r.runs)
        .map(|run| (run.probe.label(), predicted_probe_cost(&run.probe)))
        .collect();
    let outcome = run_plans_with(&[&plan], registry, options)
        .pop()
        .expect("one plan in, one outcome out");

    let mut designs: Vec<Design> = pruned
        .survivors
        .iter()
        .zip(&outcome.report.rows)
        .map(|(c, row)| {
            let value = |name: &str| {
                row.values
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, v)| v)
                    .unwrap_or(f64::NAN)
            };
            // The chaos probe is the row's only windowed one, so it owns the
            // row's single series; a failed chaos probe leaves none.
            let recovery_ms = row
                .series
                .first()
                .map(|s| recovery_time_ms(&s.series))
                .unwrap_or(f64::NAN);
            Design {
                name: c.name.clone(),
                cell: c.cell.clone(),
                forecast_tps: c.forecast_tps,
                measured_tps: value("tps"),
                p99_ms: value("p99_ms"),
                recovery_ms,
                on_front: false,
            }
        })
        .collect();

    let points: Vec<Vec<f64>> = designs
        .iter()
        .map(|d| vec![d.measured_tps, -d.p99_ms, -d.recovery_ms])
        .collect();
    for i in pareto_front(&points) {
        designs[i].on_front = true;
    }

    let samples: Vec<(String, f64, f64)> = designs
        .iter()
        .map(|d| (d.cell.clone(), d.forecast_tps, d.measured_tps))
        .collect();
    let measured: Vec<&Design> = designs
        .iter()
        .filter(|d| d.measured_tps.is_finite())
        .collect();
    let tau = kendall_tau(
        &measured.iter().map(|d| d.forecast_tps).collect::<Vec<_>>(),
        &measured.iter().map(|d| d.measured_tps).collect::<Vec<_>>(),
    );

    Ok(ExploreOutcome {
        grid_points: enumeration.grid_points,
        sampled_out: enumeration.sampled_out,
        cut: pruned
            .cut
            .into_iter()
            .map(|(c, best)| CutDesign {
                name: c.name,
                forecast_tps: c.forecast_tps,
                group_best_tps: best,
            })
            .collect(),
        designs,
        kendall_tau: tau,
        cells: per_cell_calibration(&samples),
        scheduling,
        plan: outcome,
    })
}

impl ExploreOutcome {
    /// Fixed-width text report: the funnel counts, the measured designs
    /// (front members starred), and the calibration summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let surveyed = self.grid_points - self.sampled_out;
        let _ = writeln!(
            out,
            "== {PLAN_ID} — grid {} / sampled {} / pruned {} / measured {} ==",
            self.grid_points,
            surveyed,
            self.cut.len(),
            self.designs.len()
        );
        for cut in &self.cut {
            let _ = writeln!(
                out,
                "   pruned {:<44} forecast {:>12.1} vs group best {:>12.1}",
                cut.name, cut.forecast_tps, cut.group_best_tps
            );
        }
        let _ = writeln!(
            out,
            "{:<46}{:>14}{:>14}{:>10}{:>13}  front",
            "design", "forecast_tps", "tps", "p99_ms", "recovery_ms"
        );
        for d in &self.designs {
            let _ = writeln!(
                out,
                "{:<46}{:>14.1}{:>14.1}{:>10.2}{:>13.1}  {}",
                d.name,
                d.forecast_tps,
                d.measured_tps,
                d.p99_ms,
                d.recovery_ms,
                if d.on_front { "*" } else { "" }
            );
        }
        let _ = writeln!(
            out,
            "forecast rank agreement: kendall_tau={:.3}",
            self.kendall_tau
        );
        for c in &self.cells {
            let _ = writeln!(
                out,
                "cell {:<44} designs {:>2}  mean_abs_rel_err {:>7.3}  correction {:>7.3}",
                c.cell, c.designs, c.mean_abs_rel_err, c.correction
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_core::metrics::{LatencySummary, TimeWindow};

    fn window(start_us: u64, end_us: u64, submitted: u64, committed: u64) -> TimeWindow {
        TimeWindow {
            start_us,
            end_us,
            submitted,
            committed,
            aborted: 0,
            offered_tps: 0.0,
            throughput_tps: 0.0,
            abort_rate_percent: 0.0,
            latency: LatencySummary::default(),
        }
    }

    #[test]
    fn recovery_spans_the_stalled_windows() {
        let healthy = TimeSeries {
            windows: vec![window(0, 10, 5, 5), window(10, 20, 5, 4)],
            ..TimeSeries::default()
        };
        assert_eq!(recovery_time_ms(&healthy), 0.0);

        let faulted = TimeSeries {
            windows: vec![
                window(0, 1_000, 5, 5),
                window(1_000, 2_000, 5, 0), // dip starts
                window(2_000, 3_000, 0, 0), // idle window: not a stall
                window(3_000, 4_000, 5, 0), // still stalled
                window(4_000, 5_000, 5, 9), // backlog drains
            ],
            ..TimeSeries::default()
        };
        assert_eq!(recovery_time_ms(&faulted), 3.0);
    }

    #[test]
    fn plan_rows_mirror_the_survivors() {
        let spec = ExploreSpec::quick(300, 7);
        let enumeration = enumerate(&spec).unwrap();
        let pruned = prune(&enumeration.candidates, &spec.prune);
        let plan = measurement_plan(&pruned.survivors, spec.txns, spec.seed);
        assert_eq!(plan.rows.len(), pruned.survivors.len());
        for (row, c) in plan.rows.iter().zip(&pruned.survivors) {
            assert_eq!(row.label, c.name);
            assert_eq!(row.runs.len(), 2, "perf + chaos probes");
            match (&row.runs[0].probe, &row.runs[1].probe) {
                (
                    Probe::Drive { driver: perf, .. },
                    Probe::Drive {
                        system,
                        driver: chaos,
                        ..
                    },
                ) => {
                    assert!(perf.window_us.is_none());
                    assert!(chaos.window_us.is_some());
                    assert_eq!(system.label(), format!("{}#chaos", c.name));
                }
                other => panic!("unexpected probes: {other:?}"),
            }
        }
    }
}
