//! Forecast-calibration report: how well did the analytic model rank and
//! scale against the measured runs?
//!
//! Two views, both computed purely from (forecast, measured) pairs:
//!
//! * **Rank agreement** — Kendall's τ (tau-a) between the forecast and
//!   measured throughput orderings. Pruning only needs the forecast to
//!   *rank* designs correctly; τ is the honest summary of that.
//! * **Per-cell scale error** — designs grouped by taxonomy cell
//!   (`replication|protocol|concurrency`), each cell reporting its mean
//!   absolute relative error and a fitted multiplicative correction (the
//!   geometric mean of measured/forecast). Feeding the correction back
//!   into the cost model is the calibration loop's next turn.

use std::collections::BTreeMap;

/// Kendall's τ (tau-a) over paired samples: concordant minus discordant
/// pairs, over all pairs. Ties on either axis contribute zero. Returns NaN
/// for fewer than two samples — no ranking exists to agree with.
pub fn kendall_tau(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "kendall_tau: unpaired samples");
    let n = xs.len();
    if n < 2 {
        return f64::NAN;
    }
    let sign = |a: f64, b: f64| (a > b) as i64 - (a < b) as i64;
    let mut net = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = sign(xs[i], xs[j]);
            let dy = sign(ys[i], ys[j]);
            if dx != 0 && dy != 0 {
                net += if dx == dy { 1 } else { -1 };
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    net as f64 / pairs
}

/// Calibration summary for one taxonomy cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellCalibration {
    /// The cell key, `replication|protocol|concurrency`.
    pub cell: String,
    /// Designs measured in this cell.
    pub designs: usize,
    /// Mean of |measured − forecast| / measured.
    pub mean_abs_rel_err: f64,
    /// Geometric mean of measured/forecast — multiply the cell's forecasts
    /// by this to center them on the measurements.
    pub correction: f64,
}

/// Group (cell, forecast, measured) triples by cell and fit each cell's
/// error and correction factor. Non-finite or non-positive samples are
/// skipped (a failed design carries no calibration signal). Cells come out
/// in `BTreeMap` order — deterministic for the JSON diff tests.
pub fn per_cell_calibration(samples: &[(String, f64, f64)]) -> Vec<CellCalibration> {
    let mut cells: BTreeMap<&str, Vec<(f64, f64)>> = BTreeMap::new();
    for (cell, forecast, measured) in samples {
        if forecast.is_finite() && measured.is_finite() && *forecast > 0.0 && *measured > 0.0 {
            cells
                .entry(cell.as_str())
                .or_default()
                .push((*forecast, *measured));
        }
    }
    cells
        .into_iter()
        .map(|(cell, pairs)| {
            let n = pairs.len() as f64;
            let mean_abs_rel_err = pairs.iter().map(|(f, m)| ((m - f) / m).abs()).sum::<f64>() / n;
            let log_ratio_mean = pairs.iter().map(|(f, m)| (m / f).ln()).sum::<f64>() / n;
            CellCalibration {
                cell: cell.to_string(),
                designs: pairs.len(),
                mean_abs_rel_err,
                correction: log_ratio_mean.exp(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_spans_perfect_agreement_to_perfect_reversal() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((kendall_tau(&xs, &[10.0, 20.0, 30.0, 40.0]) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&xs, &[40.0, 30.0, 20.0, 10.0]) + 1.0).abs() < 1e-12);
        // One swapped pair out of six: τ = (5 − 1)/6.
        let tau = kendall_tau(&xs, &[10.0, 30.0, 20.0, 40.0]);
        assert!((tau - 4.0 / 6.0).abs() < 1e-12);
        // Ties contribute zero (tau-a), and n < 2 has no ranking.
        assert_eq!(kendall_tau(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
        assert!(kendall_tau(&[1.0], &[1.0]).is_nan());
    }

    #[test]
    fn cell_corrections_recenter_the_forecast() {
        let samples = vec![
            // Forecast exactly half the measurement → correction 2, err 0.5.
            ("a".to_string(), 50.0, 100.0),
            ("a".to_string(), 100.0, 200.0),
            // Perfect cell → correction 1, err 0.
            ("b".to_string(), 300.0, 300.0),
            // Failed design: no signal, must not poison cell b.
            ("b".to_string(), 400.0, f64::NAN),
        ];
        let cells = per_cell_calibration(&samples);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].cell, "a");
        assert_eq!(cells[0].designs, 2);
        assert!((cells[0].correction - 2.0).abs() < 1e-9);
        assert!((cells[0].mean_abs_rel_err - 0.5).abs() < 1e-9);
        assert_eq!(cells[1].cell, "b");
        assert_eq!(cells[1].designs, 1);
        assert!((cells[1].correction - 1.0).abs() < 1e-9);
        assert!(cells[1].mean_abs_rel_err.abs() < 1e-9);
    }
}
