//! Design-space explorer: guided search over the dichotomy's system ×
//! workload grid.
//!
//! The paper's taxonomy (Section 2) and forecast model (Section 5.6) turn
//! "which design should I deploy?" from a measurement campaign into a
//! guided search. This crate is that search, as four pure stages:
//!
//! 1. **Enumeration** ([`ExploreSpec`], [`enumerate`]) — a deterministic
//!    generator over every [`SystemKind`](dichotomy_systems::SystemKind)
//!    crossed with deployment knobs (replicas, shards, block cut,
//!    consensus) and workload axes (record size, Zipf θ, arrival process),
//!    with seeded sampling of the combinatorial tail.
//! 2. **Pruning** ([`PruneSpec`], [`prune`]) — each candidate maps through
//!    its taxonomy point into the forecast model and designs dominated by
//!    a same-workload rival's forecast are cut *before* execution. Every
//!    cut is reported; nothing is silently dropped.
//! 3. **Measurement** ([`measurement_plan`], [`run_explore`]) — survivors
//!    become one `ExperimentPlan` executed by the scenario engine's worker
//!    pool, inheriting probe dedup, the persistent result cache and LPT
//!    scheduling.
//! 4. **Reporting** ([`ExploreOutcome`]) — the Pareto front over measured
//!    throughput / p99 latency / fault-recovery time, plus a calibration
//!    report: Kendall's τ rank agreement and per-taxonomy-cell error with
//!    a fitted correction factor ([`calib`]).
//!
//! `repro explore` is the CLI face; `repro lint` checks explore specs with
//! the `S008` zero-survivor deny ([`lint_spec`]).

pub mod calib;
pub mod pareto;
pub mod report;
pub mod spec;

pub use calib::{kendall_tau, per_cell_calibration, CellCalibration};
pub use pareto::pareto_front;
pub use report::{
    measurement_plan, recovery_time_ms, run_explore, CutDesign, Design, ExploreOutcome, PLAN_ID,
};
pub use spec::{
    enumerate, hybrid_spec_for, lint_spec, prune, ArrivalKnob, Candidate, EnumerateError,
    Enumeration, ExploreSpec, PruneSpec, Pruned,
};
