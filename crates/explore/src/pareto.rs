//! Pareto-front extraction over measured designs.
//!
//! The explorer reports three objectives per design — throughput
//! (maximize), p99 latency (minimize) and fault-recovery time (minimize) —
//! and the front is the set of designs no rival strictly improves on. The
//! routine is objective-count generic: the report layer calls it with 3-D
//! points, the tests also exercise the 2-D projection.

/// Does `a` dominate `b`? Points are already oriented so that *larger is
/// better* on every axis (the caller negates minimized objectives).
/// Domination requires ≥ everywhere and > somewhere; equal points do not
/// dominate each other, so ties both stay on the front.
fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (&x, &y) in a.iter().zip(b) {
        if x < y {
            return false;
        }
        if x > y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the Pareto-optimal points, in input order. Points with any
/// non-finite coordinate (a failed or unmeasured design) never make the
/// front and never dominate. O(n²) — the survivor sets this runs over are
/// dozens of designs, not millions.
pub fn pareto_front(points: &[Vec<f64>]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        if p.iter().any(|v| !v.is_finite()) {
            continue;
        }
        for (j, q) in points.iter().enumerate() {
            if i != j && q.iter().all(|v| v.is_finite()) && dominates(q, p) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_d_front_keeps_the_tradeoff_curve() {
        // (tps, -p99): a classic trade-off curve plus two dominated points.
        let pts = vec![
            vec![100.0, -5.0], // fast but high latency — on the front
            vec![80.0, -2.0],  // balanced — on the front
            vec![50.0, -1.0],  // slow but snappy — on the front
            vec![70.0, -4.0],  // dominated by (80, -2)
            vec![40.0, -10.0], // dominated by everything on the curve
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn three_d_front_respects_every_axis() {
        // (tps, -p99, -recovery): the third axis rescues a point that the
        // 2-D projection would discard.
        let pts = vec![
            vec![100.0, -5.0, -300.0],
            vec![90.0, -6.0, -100.0], // worse tps AND p99, best recovery
            vec![80.0, -4.0, -400.0],
            vec![70.0, -7.0, -500.0], // dominated by all three above
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1, 2]);
        // Projecting away the recovery axis drops the rescue.
        let flat: Vec<Vec<f64>> = pts.iter().map(|p| p[..2].to_vec()).collect();
        assert_eq!(pareto_front(&flat), vec![0, 2]);
    }

    #[test]
    fn equal_points_tie_onto_the_front_together() {
        let pts = vec![
            vec![50.0, -3.0],
            vec![50.0, -3.0], // exact tie — neither dominates the other
            vec![50.0, -4.0], // dominated (equal tps, worse p99)
        ];
        assert_eq!(pareto_front(&pts), vec![0, 1]);
    }

    #[test]
    fn single_point_and_empty_inputs() {
        assert_eq!(pareto_front(&[vec![1.0, 2.0, 3.0]]), vec![0]);
        assert_eq!(pareto_front(&[]), Vec::<usize>::new());
    }

    #[test]
    fn non_finite_designs_neither_join_nor_veto_the_front() {
        let pts = vec![
            vec![f64::NAN, -1.0],      // unmeasured — excluded
            vec![f64::INFINITY, -1.0], // bogus — excluded, must not dominate
            vec![10.0, -2.0],          // the only real design
        ];
        assert_eq!(pareto_front(&pts), vec![2]);
    }
}
