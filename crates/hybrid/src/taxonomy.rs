//! Tables 1 and 2 of the paper as typed, queryable data: every system's
//! position along the four design dimensions.

use dichotomy_consensus::{FailureModel, ProtocolKind};

/// The unit of replication (the first row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationModel {
    /// The ordered log of transactions is replicated (blockchains).
    TransactionBased,
    /// The ordered log of storage operations is replicated (databases).
    StorageBased,
}

/// The concurrency dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcurrencyChoice {
    /// Transactions execute strictly one at a time.
    Serial,
    /// Transactions execute concurrently (any CC scheme).
    Concurrent,
    /// Fabric-style: concurrent execution, serial commit/validation.
    ConcurrentExecutionSerialCommit,
}

/// Whether an append-only, hash-protected ledger is part of the storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerSupport {
    Yes,
    No,
}

/// The state index (the "Index (Storage Engine)" column of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageIndex {
    /// LSM tree without an authenticated index.
    Lsm,
    /// LSM tree plus a Merkle Patricia Trie.
    LsmWithMpt,
    /// LSM tree plus a Merkle Bucket Tree.
    LsmWithMbt,
    /// B/B+ tree without an authenticated index.
    BTree,
    /// B tree plus an external authenticated structure (FalconDB/IntegriDB).
    BTreeWithMerkle,
    /// Skip list (Redis) without an authenticated index.
    SkipList,
}

/// Whether the system shards and runs 2PC across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardingSupport {
    None,
    TwoPcTrustedCoordinator,
    TwoPcBftCoordinator,
}

/// Table 2's row groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemCategory {
    PermissionlessBlockchain,
    PermissionedBlockchain,
    NewSqlDatabase,
    NoSqlDatabase,
    OutOfBlockchainDatabase,
    OutOfDatabaseBlockchain,
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct SystemProfile {
    /// System name as used in the paper.
    pub name: &'static str,
    /// Which row group it belongs to.
    pub category: SystemCategory,
    /// Replication model.
    pub replication: ReplicationModel,
    /// Ordering/replication machinery.
    pub protocol: ProtocolKind,
    /// Concurrency choice.
    pub concurrency: ConcurrencyChoice,
    /// Ledger abstraction present?
    pub ledger: LedgerSupport,
    /// State index.
    pub index: StorageIndex,
    /// Sharding support.
    pub sharding: ShardingSupport,
    /// Reported peak throughput (tps) where the paper or the system's own
    /// publications state one; used by the Figure 15 comparison.
    pub reported_tps: Option<f64>,
}

impl SystemProfile {
    /// The failure model implied by the protocol.
    pub fn failure_model(&self) -> FailureModel {
        self.protocol.failure_model()
    }

    /// Whether the design is security-oriented on the replication dimension
    /// (transaction-based replication), the red/blue colouring of Table 2.
    pub fn security_oriented_replication(&self) -> bool {
        self.replication == ReplicationModel::TransactionBased
    }
}

/// Every system classified in Table 2 (the benchmarked ones and the hybrids).
pub fn all_systems() -> Vec<SystemProfile> {
    use ConcurrencyChoice::*;
    use LedgerSupport::*;
    use ReplicationModel::*;
    use StorageIndex::*;
    use SystemCategory::*;
    vec![
        SystemProfile {
            name: "Ethereum",
            category: PermissionlessBlockchain,
            replication: TransactionBased,
            protocol: ProtocolKind::ProofOfWork,
            concurrency: Serial,
            ledger: Yes,
            index: LsmWithMpt,
            sharding: ShardingSupport::None,
            reported_tps: Some(15.0),
        },
        SystemProfile {
            name: "Quorum v2.2",
            category: PermissionedBlockchain,
            replication: TransactionBased,
            protocol: ProtocolKind::Raft,
            concurrency: Serial,
            ledger: Yes,
            index: LsmWithMpt,
            sharding: ShardingSupport::None,
            reported_tps: Some(245.0),
        },
        SystemProfile {
            name: "Fabric v2.2",
            category: PermissionedBlockchain,
            replication: TransactionBased,
            protocol: ProtocolKind::SharedLog,
            concurrency: ConcurrentExecutionSerialCommit,
            ledger: Yes,
            index: Lsm,
            sharding: ShardingSupport::None,
            reported_tps: Some(1294.0),
        },
        SystemProfile {
            name: "Fabric v0.6",
            category: PermissionedBlockchain,
            replication: TransactionBased,
            protocol: ProtocolKind::Pbft,
            concurrency: Serial,
            ledger: Yes,
            index: LsmWithMbt,
            sharding: ShardingSupport::None,
            reported_tps: None,
        },
        SystemProfile {
            name: "TiDB v4.0",
            category: NewSqlDatabase,
            replication: StorageBased,
            protocol: ProtocolKind::Raft,
            concurrency: Concurrent,
            ledger: No,
            index: Lsm,
            sharding: ShardingSupport::TwoPcTrustedCoordinator,
            reported_tps: Some(5159.0),
        },
        SystemProfile {
            name: "CockroachDB",
            category: NewSqlDatabase,
            replication: StorageBased,
            protocol: ProtocolKind::Raft,
            concurrency: Concurrent,
            ledger: No,
            index: Lsm,
            sharding: ShardingSupport::TwoPcTrustedCoordinator,
            reported_tps: None,
        },
        SystemProfile {
            name: "Spanner",
            category: NewSqlDatabase,
            replication: StorageBased,
            protocol: ProtocolKind::Raft,
            concurrency: Concurrent,
            ledger: No,
            index: Lsm,
            sharding: ShardingSupport::TwoPcTrustedCoordinator,
            reported_tps: None,
        },
        SystemProfile {
            name: "etcd v3.3",
            category: NoSqlDatabase,
            replication: StorageBased,
            protocol: ProtocolKind::Raft,
            concurrency: Serial,
            ledger: No,
            index: BTree,
            sharding: ShardingSupport::None,
            reported_tps: Some(16781.0),
        },
        SystemProfile {
            name: "BlockchainDB",
            category: OutOfBlockchainDatabase,
            replication: StorageBased,
            protocol: ProtocolKind::ProofOfWork,
            concurrency: Serial,
            ledger: Yes,
            index: LsmWithMpt,
            sharding: ShardingSupport::TwoPcTrustedCoordinator,
            reported_tps: Some(200.0),
        },
        SystemProfile {
            name: "Veritas",
            category: OutOfBlockchainDatabase,
            replication: StorageBased,
            protocol: ProtocolKind::SharedLog,
            concurrency: ConcurrentExecutionSerialCommit,
            ledger: Yes,
            index: SkipList,
            sharding: ShardingSupport::None,
            reported_tps: Some(29_000.0),
        },
        SystemProfile {
            name: "FalconDB",
            category: OutOfBlockchainDatabase,
            replication: StorageBased,
            protocol: ProtocolKind::Tendermint,
            concurrency: ConcurrentExecutionSerialCommit,
            ledger: Yes,
            index: BTreeWithMerkle,
            sharding: ShardingSupport::None,
            reported_tps: Some(2_000.0),
        },
        SystemProfile {
            name: "BRD",
            category: OutOfDatabaseBlockchain,
            replication: TransactionBased,
            protocol: ProtocolKind::SharedLog,
            concurrency: Concurrent,
            ledger: Yes,
            index: BTree,
            sharding: ShardingSupport::None,
            reported_tps: Some(2_700.0),
        },
        SystemProfile {
            name: "ChainifyDB",
            category: OutOfDatabaseBlockchain,
            replication: TransactionBased,
            protocol: ProtocolKind::SharedLog,
            concurrency: Concurrent,
            ledger: Yes,
            index: BTree,
            sharding: ShardingSupport::None,
            reported_tps: Some(6_100.0),
        },
        SystemProfile {
            name: "BigchainDB",
            category: OutOfDatabaseBlockchain,
            replication: TransactionBased,
            protocol: ProtocolKind::Tendermint,
            concurrency: Concurrent,
            ledger: Yes,
            index: BTree,
            sharding: ShardingSupport::None,
            reported_tps: Some(300.0),
        },
    ]
}

/// Render Table 2 as a fixed-width text table (used by the `tab02_taxonomy`
/// bench binary and the docs).
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<26} {:<12} {:<12} {:<34} {:<7} {:<10}\n",
        "System", "Category", "Replication", "Protocol", "Concurrency", "Ledger", "Sharding"
    ));
    for s in all_systems() {
        out.push_str(&format!(
            "{:<14} {:<26} {:<12} {:<12} {:<34} {:<7} {:<10}\n",
            s.name,
            format!("{:?}", s.category),
            match s.replication {
                ReplicationModel::TransactionBased => "txn",
                ReplicationModel::StorageBased => "storage",
            },
            s.protocol.name(),
            format!("{:?}", s.concurrency),
            match s.ledger {
                LedgerSupport::Yes => "yes",
                LedgerSupport::No => "no",
            },
            format!("{:?}", s.sharding),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_the_four_benchmarked_systems() {
        let names: Vec<&str> = all_systems().iter().map(|s| s.name).collect();
        for expected in ["Quorum v2.2", "Fabric v2.2", "TiDB v4.0", "etcd v3.3"] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn blockchains_replicate_transactions_databases_replicate_storage() {
        for s in all_systems() {
            match s.category {
                SystemCategory::PermissionedBlockchain
                | SystemCategory::PermissionlessBlockchain
                | SystemCategory::OutOfDatabaseBlockchain => {
                    assert_eq!(
                        s.replication,
                        ReplicationModel::TransactionBased,
                        "{}",
                        s.name
                    )
                }
                SystemCategory::NewSqlDatabase
                | SystemCategory::NoSqlDatabase
                | SystemCategory::OutOfBlockchainDatabase => {
                    assert_eq!(s.replication, ReplicationModel::StorageBased, "{}", s.name)
                }
            }
        }
    }

    #[test]
    fn only_ledger_systems_use_authenticated_indexes() {
        for s in all_systems() {
            if matches!(
                s.index,
                StorageIndex::LsmWithMpt | StorageIndex::LsmWithMbt | StorageIndex::BTreeWithMerkle
            ) {
                assert_eq!(s.ledger, LedgerSupport::Yes, "{}", s.name);
            }
        }
    }

    #[test]
    fn failure_models_follow_the_protocols() {
        let systems = all_systems();
        let quorum = systems.iter().find(|s| s.name == "Quorum v2.2").unwrap();
        assert_eq!(quorum.failure_model(), FailureModel::Crash);
        let bigchain = systems.iter().find(|s| s.name == "BigchainDB").unwrap();
        assert_eq!(bigchain.failure_model(), FailureModel::Byzantine);
        assert!(quorum.security_oriented_replication());
        let tidb = systems.iter().find(|s| s.name == "TiDB v4.0").unwrap();
        assert!(!tidb.security_oriented_replication());
    }

    #[test]
    fn table_rendering_mentions_every_system() {
        let rendered = render_table2();
        for s in all_systems() {
            assert!(
                rendered.contains(s.name),
                "{} missing from rendering",
                s.name
            );
        }
    }
}
