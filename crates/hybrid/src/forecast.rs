//! The Figure 15 forecast framework.
//!
//! Section 5.6 reduces a hybrid's expected peak throughput to two factors:
//! the **replication model** (transaction-based replication restricts
//! concurrency and caps throughput below storage-based designs) and the
//! **failure model** (CFT ordering is cheaper than BFT, especially when the
//! CFT protocol is a shared log). The framework places a design into a
//! throughput *band* (low / medium / high) and produces a numeric
//! back-of-the-envelope estimate from the replication profile, which the
//! `fig15_hybrid_forecast` bench compares against the systems' reported
//! numbers (Veritas 29 k vs ChainifyDB 6.1 k, etc.).

use std::fmt;

use dichotomy_consensus::{FailureModel, ProtocolKind, ReplicationProfile};
use dichotomy_simnet::{CostModel, NetworkConfig};

use crate::taxonomy::{ConcurrencyChoice, ReplicationModel, SystemProfile};

/// Why a forecast request was rejected before (or after) evaluation.
///
/// `forecast_txn_cost_us` clamps its denominator, but `forecast_throughput`
/// itself can emit `NaN` for degenerate specs (a zero batch divided by a
/// zero occupancy). Comparators downstream — the explorer's pruning pass
/// sorts candidates by forecast — must never see a non-finite score, so the
/// checked API rejects degenerate inputs with a structured error instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForecastError {
    /// `nodes == 0`: no replica participates in ordering.
    ZeroNodes,
    /// `batch_size == 0`: the ordering layer never cuts a batch.
    ZeroBatch,
    /// `txn_bytes == 0`: transactions carry no payload to cost.
    ZeroTxnBytes,
    /// The inputs validated but the model still produced a non-finite rate.
    NonFinite,
}

impl fmt::Display for ForecastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ForecastError::ZeroNodes => write!(f, "spec has zero ordering nodes"),
            ForecastError::ZeroBatch => write!(f, "spec has a zero ordering batch size"),
            ForecastError::ZeroTxnBytes => write!(f, "spec has zero-byte transactions"),
            ForecastError::NonFinite => write!(f, "forecast evaluated to a non-finite rate"),
        }
    }
}

/// The qualitative bands of Figure 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ThroughputBand {
    Low,
    Medium,
    High,
}

/// A prospective hybrid design (the input to the forecast).
#[derive(Debug, Clone)]
pub struct HybridSpec {
    /// Name for reports.
    pub name: String,
    /// Replication model.
    pub replication: ReplicationModel,
    /// Ordering protocol.
    pub protocol: ProtocolKind,
    /// Concurrency choice.
    pub concurrency: ConcurrencyChoice,
    /// Number of replicas participating in ordering.
    pub nodes: usize,
    /// Average transaction size in bytes.
    pub txn_bytes: usize,
    /// Transactions per ordering batch.
    pub batch_size: usize,
}

impl HybridSpec {
    /// Build a spec from a Table 2 profile with default deployment numbers.
    pub fn from_profile(p: &SystemProfile) -> Self {
        HybridSpec {
            name: p.name.to_string(),
            replication: p.replication,
            protocol: p.protocol,
            concurrency: p.concurrency,
            nodes: 4,
            txn_bytes: 1_100,
            batch_size: 500,
        }
    }

    /// Reject degenerate deployment numbers before they reach the model.
    /// Zero nodes, a zero batch or zero-byte transactions make the
    /// occupancy/rate divisions meaningless (and can surface as `NaN`).
    pub fn validate(&self) -> Result<(), ForecastError> {
        if self.nodes == 0 {
            return Err(ForecastError::ZeroNodes);
        }
        if self.batch_size == 0 {
            return Err(ForecastError::ZeroBatch);
        }
        if self.txn_bytes == 0 {
            return Err(ForecastError::ZeroTxnBytes);
        }
        Ok(())
    }

    /// The qualitative Figure 15 band: replication model first, then failure
    /// model.
    pub fn band(&self) -> ThroughputBand {
        match (self.replication, self.protocol.failure_model()) {
            (ReplicationModel::StorageBased, FailureModel::Crash) => ThroughputBand::High,
            (ReplicationModel::StorageBased, FailureModel::Byzantine) => ThroughputBand::Medium,
            (ReplicationModel::TransactionBased, FailureModel::Crash) => ThroughputBand::Medium,
            (ReplicationModel::TransactionBased, FailureModel::Byzantine) => ThroughputBand::Low,
        }
    }
}

/// A numeric back-of-the-envelope throughput estimate in transactions per
/// second.
///
/// The ordering layer's sustainable rate is `batch_size / occupancy`; the
/// execution layer's rate depends on the concurrency choice: serial
/// execution caps it at one transaction per average execution time, while
/// concurrent designs scale with the node count. The estimate is the minimum
/// of the two — the pipeline's bottleneck.
pub fn forecast_throughput(spec: &HybridSpec, network: &NetworkConfig, costs: &CostModel) -> f64 {
    let profile =
        ReplicationProfile::new(spec.protocol, spec.nodes, network.clone(), costs.clone());
    let batch_bytes = spec.txn_bytes * spec.batch_size;
    // Ordering-layer rate. Pipelined CFT orderers (Raft, shared log) sustain
    // one batch per leader-occupancy period; BFT protocols run their rounds
    // back to back per block (Tendermint/IBFT), so the commit latency itself
    // bounds the batch rate; PoW is bounded by the block interval.
    let per_batch_us = match spec.protocol.failure_model() {
        FailureModel::Crash => profile.leader_occupancy_us(batch_bytes),
        FailureModel::Byzantine => profile
            .leader_occupancy_us(batch_bytes)
            .max(profile.commit_latency_us(batch_bytes)),
    };
    let ordering_rate = spec.batch_size as f64 / (per_batch_us as f64 / 1e6);

    // Per-transaction execution/commit cost on the state storage. Designs
    // that tolerate Byzantine failures re-verify client signatures at every
    // replica before applying effects.
    let byzantine_verify = match spec.protocol.failure_model() {
        FailureModel::Byzantine => costs.verify_signatures_us(1),
        FailureModel::Crash => 0,
    };
    let exec_us = (match spec.replication {
        // Transaction-based: full smart-contract execution and (for ledger
        // systems) authenticated-index maintenance at every replica.
        ReplicationModel::TransactionBased => {
            costs.evm_exec_us(spec.txn_bytes)
                + costs.adr_update_us(9, spec.txn_bytes)
                + costs.storage_put_us(spec.txn_bytes)
        }
        // Storage-based: just apply the write.
        ReplicationModel::StorageBased => costs.storage_put_us(spec.txn_bytes),
    } + byzantine_verify) as f64;
    let execution_rate = match spec.concurrency {
        ConcurrencyChoice::Serial => 1e6 / exec_us,
        ConcurrencyChoice::ConcurrentExecutionSerialCommit => {
            // Execution parallelizes; the serial commit re-checks versions and
            // persists, which is cheaper than execution.
            1e6 / (costs.storage_put_us(spec.txn_bytes) as f64 + 40.0 + byzantine_verify as f64)
        }
        ConcurrencyChoice::Concurrent => spec.nodes as f64 * 1e6 / exec_us,
    };
    ordering_rate.min(execution_rate)
}

/// The forecast inverted into a per-transaction cost in microseconds.
///
/// `forecast_throughput` predicts a design's sustainable rate; dividing it
/// into one second gives the modeled wall-clock cost of pushing one
/// transaction through the pipeline. The measurement scheduler uses this to
/// order probes longest-predicted-first: a probe's predicted wall is
/// `transactions × nodes × forecast_txn_cost_us`. Clamped below by 1 tps so
/// a degenerate forecast can never return a non-finite cost.
pub fn forecast_txn_cost_us(spec: &HybridSpec, network: &NetworkConfig, costs: &CostModel) -> f64 {
    1e6 / forecast_throughput(spec, network, costs).max(1.0)
}

/// [`forecast_throughput`] with input validation: degenerate specs (zero
/// nodes/batch/bytes) and non-finite model outputs come back as a
/// [`ForecastError`] instead of `NaN`, so ordering comparators downstream
/// only ever see finite positive rates.
pub fn try_forecast_throughput(
    spec: &HybridSpec,
    network: &NetworkConfig,
    costs: &CostModel,
) -> Result<f64, ForecastError> {
    spec.validate()?;
    let tps = forecast_throughput(spec, network, costs);
    if tps.is_finite() && tps > 0.0 {
        Ok(tps)
    } else {
        Err(ForecastError::NonFinite)
    }
}

/// [`forecast_txn_cost_us`] on the checked path: the same validation as
/// [`try_forecast_throughput`], then the clamped inversion.
pub fn try_forecast_txn_cost_us(
    spec: &HybridSpec,
    network: &NetworkConfig,
    costs: &CostModel,
) -> Result<f64, ForecastError> {
    try_forecast_throughput(spec, network, costs).map(|tps| 1e6 / tps.max(1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::all_systems;

    fn defaults() -> (NetworkConfig, CostModel) {
        (NetworkConfig::lan_1gbps(), CostModel::calibrated())
    }

    #[test]
    fn bands_follow_replication_then_failure_model() {
        let (_, _) = defaults();
        let mk = |replication, protocol| HybridSpec {
            name: "x".into(),
            replication,
            protocol,
            concurrency: ConcurrencyChoice::Concurrent,
            nodes: 4,
            txn_bytes: 1000,
            batch_size: 100,
        };
        assert_eq!(
            mk(ReplicationModel::StorageBased, ProtocolKind::SharedLog).band(),
            ThroughputBand::High
        );
        assert_eq!(
            mk(ReplicationModel::StorageBased, ProtocolKind::Tendermint).band(),
            ThroughputBand::Medium
        );
        assert_eq!(
            mk(ReplicationModel::TransactionBased, ProtocolKind::SharedLog).band(),
            ThroughputBand::Medium
        );
        assert_eq!(
            mk(ReplicationModel::TransactionBased, ProtocolKind::Pbft).band(),
            ThroughputBand::Low
        );
    }

    #[test]
    fn veritas_outranks_chainifydb_like_section_5_6() {
        let (net, costs) = defaults();
        let systems = all_systems();
        let veritas = systems.iter().find(|s| s.name == "Veritas").unwrap();
        let chainify = systems.iter().find(|s| s.name == "ChainifyDB").unwrap();
        let f_veritas = forecast_throughput(&HybridSpec::from_profile(veritas), &net, &costs);
        let f_chainify = forecast_throughput(&HybridSpec::from_profile(chainify), &net, &costs);
        assert!(
            f_veritas > f_chainify,
            "Veritas {f_veritas:.0} vs ChainifyDB {f_chainify:.0}"
        );
        // And the bands agree with the reported ordering.
        assert!(
            HybridSpec::from_profile(veritas).band() >= HybridSpec::from_profile(chainify).band()
        );
    }

    #[test]
    fn bft_hybrids_forecast_below_cft_hybrids() {
        let (net, costs) = defaults();
        let systems = all_systems();
        let bigchain = systems.iter().find(|s| s.name == "BigchainDB").unwrap();
        let brd = systems.iter().find(|s| s.name == "BRD").unwrap();
        let f_bigchain = forecast_throughput(&HybridSpec::from_profile(bigchain), &net, &costs);
        let f_brd = forecast_throughput(&HybridSpec::from_profile(brd), &net, &costs);
        assert!(
            f_brd > f_bigchain,
            "BRD {f_brd:.0} vs BigchainDB {f_bigchain:.0}"
        );
    }

    #[test]
    fn forecast_ranking_matches_reported_ranking_for_most_hybrids() {
        let (net, costs) = defaults();
        let hybrids: Vec<_> = all_systems()
            .into_iter()
            .filter(|s| s.reported_tps.is_some())
            .filter(|s| {
                matches!(
                    s.category,
                    crate::taxonomy::SystemCategory::OutOfBlockchainDatabase
                        | crate::taxonomy::SystemCategory::OutOfDatabaseBlockchain
                )
            })
            .collect();
        let mut agreements = 0usize;
        let mut pairs = 0usize;
        for i in 0..hybrids.len() {
            for j in i + 1..hybrids.len() {
                let (a, b) = (&hybrids[i], &hybrids[j]);
                let fa = forecast_throughput(&HybridSpec::from_profile(a), &net, &costs);
                let fb = forecast_throughput(&HybridSpec::from_profile(b), &net, &costs);
                let reported = a.reported_tps.unwrap() > b.reported_tps.unwrap();
                let forecast = fa > fb;
                pairs += 1;
                if reported == forecast {
                    agreements += 1;
                }
            }
        }
        // The framework is back-of-the-envelope: require a clear majority of
        // pairwise orderings to agree, not perfection.
        assert!(
            agreements * 2 > pairs,
            "only {agreements}/{pairs} pairwise orderings agree"
        );
    }

    #[test]
    fn txn_cost_is_the_finite_inverse_of_the_forecast() {
        let (net, costs) = defaults();
        for profile in all_systems() {
            let spec = HybridSpec::from_profile(&profile);
            let cost = forecast_txn_cost_us(&spec, &net, &costs);
            assert!(cost.is_finite() && cost > 0.0, "{}: {cost}", spec.name);
            let tps = forecast_throughput(&spec, &net, &costs);
            if tps >= 1.0 {
                assert!((cost - 1e6 / tps).abs() < 1e-6, "{}", spec.name);
            }
        }
    }

    #[test]
    fn degenerate_specs_return_structured_errors_not_nan() {
        let (net, costs) = defaults();
        let good = HybridSpec {
            name: "good".into(),
            replication: ReplicationModel::StorageBased,
            protocol: ProtocolKind::Raft,
            concurrency: ConcurrencyChoice::Concurrent,
            nodes: 4,
            txn_bytes: 1_000,
            batch_size: 500,
        };
        assert!(good.validate().is_ok());
        let tps = try_forecast_throughput(&good, &net, &costs).unwrap();
        assert_eq!(tps, forecast_throughput(&good, &net, &costs));

        let zero_nodes = HybridSpec {
            nodes: 0,
            ..good.clone()
        };
        assert_eq!(
            try_forecast_throughput(&zero_nodes, &net, &costs),
            Err(ForecastError::ZeroNodes)
        );
        let zero_batch = HybridSpec {
            batch_size: 0,
            ..good.clone()
        };
        assert_eq!(
            try_forecast_throughput(&zero_batch, &net, &costs),
            Err(ForecastError::ZeroBatch)
        );
        let zero_bytes = HybridSpec {
            txn_bytes: 0,
            ..good.clone()
        };
        assert_eq!(
            try_forecast_txn_cost_us(&zero_bytes, &net, &costs),
            Err(ForecastError::ZeroTxnBytes)
        );
        // Errors render something actionable for diagnostics.
        assert!(ForecastError::ZeroBatch.to_string().contains("batch"));
    }

    #[test]
    fn checked_cost_matches_the_unchecked_clamped_inversion() {
        let (net, costs) = defaults();
        for profile in all_systems() {
            let spec = HybridSpec::from_profile(&profile);
            assert_eq!(
                try_forecast_txn_cost_us(&spec, &net, &costs).unwrap(),
                forecast_txn_cost_us(&spec, &net, &costs),
                "{}",
                spec.name
            );
        }
    }

    #[test]
    fn serial_execution_caps_transaction_based_designs() {
        let (net, costs) = defaults();
        let serial = HybridSpec {
            name: "serial".into(),
            replication: ReplicationModel::TransactionBased,
            protocol: ProtocolKind::Raft,
            concurrency: ConcurrencyChoice::Serial,
            nodes: 4,
            txn_bytes: 1000,
            batch_size: 200,
        };
        let concurrent = HybridSpec {
            concurrency: ConcurrencyChoice::Concurrent,
            name: "concurrent".into(),
            ..serial.clone()
        };
        assert!(
            forecast_throughput(&concurrent, &net, &costs)
                > forecast_throughput(&serial, &net, &costs)
        );
    }
}
