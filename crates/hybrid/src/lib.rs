//! The taxonomy (Tables 1 and 2) as queryable data, and the
//! back-of-the-envelope forecast framework for hybrid blockchain–database
//! systems (Section 5.6, Figure 15).

pub mod forecast;
pub mod taxonomy;

pub use forecast::{
    forecast_throughput, forecast_txn_cost_us, try_forecast_throughput, try_forecast_txn_cost_us,
    ForecastError, HybridSpec, ThroughputBand,
};
pub use taxonomy::{
    all_systems, ConcurrencyChoice, LedgerSupport, ReplicationModel, ShardingSupport, StorageIndex,
    SystemCategory, SystemProfile,
};
