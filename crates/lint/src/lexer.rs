//! A minimal Rust lexer: just enough to tokenize the workspace's own source
//! reliably — identifiers, punctuation, and line numbers — while skipping
//! everything that could fake a match (comments, strings, raw strings, byte
//! strings, char literals) and collecting `// lint: allow(...)` directives.
//!
//! Deliberately not a full lexer: numeric literals are lumped into opaque
//! [`Tok::Lit`] tokens, lifetimes are dropped, and `->`/`=>` are merged into
//! single tokens so the item scanner can count `<`/`>` nesting without
//! seeing the `>` of an arrow.

/// One token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character (`->`/`=>` excepted, see below).
    Punct(char),
    /// `->`, merged so `>`-counting in generics stays balanced.
    Arrow,
    /// `=>`, merged for the same reason.
    FatArrow,
    /// Any literal (number, string, char, byte string): contents dropped.
    Lit,
}

/// A token plus the 1-indexed line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

impl Token {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// An in-source allowlist directive: `// lint: allow(D003, D004) -- reason`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// Line the comment sits on.
    pub line: u32,
    /// The codes inside `allow(...)`.
    pub codes: Vec<String>,
    /// Whether a `-- <reason>` justification follows (D006 when missing).
    pub has_reason: bool,
    /// True when the comment is the first thing on its line, in which case
    /// it also covers the next token-bearing line.
    pub standalone: bool,
}

/// Lexer output: the token stream plus every allow directive found.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<AllowDirective>,
}

/// Tokenize `source`. Never fails: unrecognized bytes lex as punctuation.
pub fn lex(source: &str) -> Lexed {
    let chars: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut pos = 0usize;
    let mut line = 1u32;
    // Tracks whether the current line already produced a token, so comments
    // can be classified as trailing vs standalone.
    let mut token_on_line = false;

    macro_rules! push {
        ($tok:expr) => {{
            out.tokens.push(Token { tok: $tok, line });
            token_on_line = true;
        }};
    }

    while pos < chars.len() {
        let c = chars[pos];
        match c {
            '\n' => {
                line += 1;
                token_on_line = false;
                pos += 1;
            }
            c if c.is_whitespace() => pos += 1,
            '/' if chars.get(pos + 1) == Some(&'/') => {
                // Line comment: scan to end of line, mining allow directives.
                let start = pos + 2;
                let mut end = start;
                while end < chars.len() && chars[end] != '\n' {
                    end += 1;
                }
                let text: String = chars[start..end].iter().collect();
                if let Some(directive) = parse_allow(&text, line, !token_on_line) {
                    out.allows.push(directive);
                }
                pos = end;
            }
            '/' if chars.get(pos + 1) == Some(&'*') => {
                // Block comment, nested per Rust rules.
                let mut depth = 1;
                pos += 2;
                while pos < chars.len() && depth > 0 {
                    if chars[pos] == '\n' {
                        line += 1;
                        token_on_line = false;
                        pos += 1;
                    } else if chars[pos] == '/' && chars.get(pos + 1) == Some(&'*') {
                        depth += 1;
                        pos += 2;
                    } else if chars[pos] == '*' && chars.get(pos + 1) == Some(&'/') {
                        depth -= 1;
                        pos += 2;
                    } else {
                        pos += 1;
                    }
                }
            }
            '"' => {
                pos = skip_string(&chars, pos, &mut line);
                push!(Tok::Lit);
            }
            'r' | 'b' if starts_raw_or_byte_string(&chars, pos) => {
                pos = skip_raw_or_byte_string(&chars, pos, &mut line);
                push!(Tok::Lit);
            }
            '\'' => {
                // Lifetime (`'a`) or char literal (`'x'`, `'\n'`, `'}'`).
                let next = chars.get(pos + 1).copied();
                let after = chars.get(pos + 2).copied();
                let is_lifetime =
                    matches!(next, Some(n) if n.is_alphabetic() || n == '_') && after != Some('\'');
                if is_lifetime {
                    pos += 2;
                    while pos < chars.len() && (chars[pos].is_alphanumeric() || chars[pos] == '_') {
                        pos += 1;
                    }
                } else {
                    // Char literal: consume to the closing quote, honouring
                    // escapes (`'\''`, `'\\'`).
                    pos += 1;
                    while pos < chars.len() {
                        match chars[pos] {
                            '\\' => pos += 2,
                            '\'' => {
                                pos += 1;
                                break;
                            }
                            '\n' => break, // malformed; resync on newline
                            _ => pos += 1,
                        }
                    }
                    push!(Tok::Lit);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = pos;
                while pos < chars.len() && (chars[pos].is_alphanumeric() || chars[pos] == '_') {
                    pos += 1;
                }
                push!(Tok::Ident(chars[start..pos].iter().collect()));
            }
            c if c.is_ascii_digit() => {
                // Opaque numeric literal: digits, letters, underscores
                // (covers 0x1f, 1_000u64; `1.5` lexes as Lit '.' Lit).
                while pos < chars.len() && (chars[pos].is_alphanumeric() || chars[pos] == '_') {
                    pos += 1;
                }
                push!(Tok::Lit);
            }
            '-' if chars.get(pos + 1) == Some(&'>') => {
                pos += 2;
                push!(Tok::Arrow);
            }
            '=' if chars.get(pos + 1) == Some(&'>') => {
                pos += 2;
                push!(Tok::FatArrow);
            }
            c => {
                pos += 1;
                push!(Tok::Punct(c));
            }
        }
    }
    out
}

/// True if `pos` starts `r"`, `r#"`, `b"`, `br"`, `br#"`, `b'` etc.
fn starts_raw_or_byte_string(chars: &[char], pos: usize) -> bool {
    let mut i = pos;
    if chars[i] == 'b' {
        i += 1;
        if chars.get(i) == Some(&'\'') {
            return true; // byte char literal b'x'
        }
    }
    if chars.get(i) == Some(&'r') {
        i += 1;
        while chars.get(i) == Some(&'#') {
            i += 1;
        }
    }
    chars.get(i) == Some(&'"')
}

/// Skip a raw/byte string starting at `pos`; returns the index past it.
fn skip_raw_or_byte_string(chars: &[char], pos: usize, line: &mut u32) -> usize {
    let mut i = pos;
    if chars[i] == 'b' {
        i += 1;
        if chars.get(i) == Some(&'\'') {
            // Byte char literal: same shape as a char literal.
            i += 1;
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '\'' => return i + 1,
                    '\n' => return i,
                    _ => i += 1,
                }
            }
            return i;
        }
    }
    let mut hashes = 0usize;
    let raw = chars.get(i) == Some(&'r');
    if raw {
        i += 1;
        while chars.get(i) == Some(&'#') {
            hashes += 1;
            i += 1;
        }
    }
    debug_assert_eq!(chars.get(i), Some(&'"'));
    if raw {
        // Raw string: no escapes; ends at `"` followed by `hashes` hashes.
        i += 1;
        while i < chars.len() {
            if chars[i] == '\n' {
                *line += 1;
                i += 1;
            } else if chars[i] == '"'
                && chars[i + 1..].iter().take_while(|&&c| c == '#').count() >= hashes
            {
                return i + 1 + hashes;
            } else {
                i += 1;
            }
        }
        i
    } else {
        skip_string(chars, i, line)
    }
}

/// Skip a normal (escaped) string literal starting at its opening quote.
fn skip_string(chars: &[char], pos: usize, line: &mut u32) -> usize {
    let mut i = pos + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Parse `lint: allow(CODE[, CODE…])[ -- reason]` out of a comment body.
fn parse_allow(comment: &str, line: u32, standalone: bool) -> Option<AllowDirective> {
    let rest = comment.trim();
    let rest = rest.strip_prefix("lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let codes: Vec<String> = rest[..close]
        .split(',')
        .map(|c| c.trim().to_string())
        .filter(|c| !c.is_empty())
        .collect();
    if codes.is_empty() {
        return None;
    }
    let tail = rest[close + 1..].trim();
    let has_reason = tail
        .strip_prefix("--")
        .is_some_and(|r| !r.trim().is_empty());
    Some(AllowDirective {
        line,
        codes,
        has_reason,
        standalone,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_comments_and_chars_never_leak_idents() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let a = "HashMap";
            let b = r#"HashMap "quoted" inside"#;
            let c = b"HashMap";
            let d = '}';
            let e: &'static str = "x";
            fn f<'a>(x: &'a u8) {}
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        // Lifetime names are dropped entirely; the type after them is kept.
        assert!(!ids.contains(&"static".to_string()), "{ids:?}");
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literal_close_brace_does_not_desync_braces() {
        let src = "fn f() { let x = '}'; let y = '{'; }";
        let braces: i32 = lex(src)
            .tokens
            .iter()
            .map(|t| match t.tok {
                Tok::Punct('{') => 1,
                Tok::Punct('}') => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
    }

    #[test]
    fn arrows_merge_and_lines_count() {
        let lexed = lex("fn f() -> u8 {\n    match x { _ => 0 }\n}\n");
        assert!(lexed.tokens.iter().any(|t| t.tok == Tok::Arrow));
        assert!(lexed.tokens.iter().any(|t| t.tok == Tok::FatArrow));
        assert!(!lexed.tokens.iter().any(|t| t.is_punct('>')));
        let last = lexed.tokens.last().unwrap();
        assert_eq!(last.line, 3);
    }

    #[test]
    fn allow_directives_parse_with_and_without_reason() {
        let src = "\
use std::collections::HashMap; // lint: allow(D003) -- keyed access only
// lint: allow(D004, D003)
let x = 1;
";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        let a = &lexed.allows[0];
        assert_eq!((a.line, a.has_reason, a.standalone), (1, true, false));
        assert_eq!(a.codes, vec!["D003"]);
        let b = &lexed.allows[1];
        assert_eq!((b.line, b.has_reason, b.standalone), (2, false, true));
        assert_eq!(b.codes, vec!["D004", "D003"]);
    }
}
