//! `dichotomy-lint`: layer 1 of the static-analysis pair — the **source
//! auditor**. Fully offline: a hand-rolled lexer ([`lexer`]) and item
//! scanner ([`scan`]), no `syn`, no external crates.
//!
//! The reproduction rests on two convention-enforced invariants:
//!
//! 1. **Cache soundness** — the measurement cache keys probes by the
//!    canonical `Encode` of their spec. One forgotten field in a
//!    hand-written `impl Encode` and the cache silently serves stale
//!    results for configurations that differ only in that field.
//! 2. **Determinism** — seeded runs must be byte-identical across worker
//!    counts. `HashMap`/`HashSet` iteration order and wall-clock reads are
//!    exactly the bugs that break it.
//!
//! This crate turns both from tribal knowledge into checked facts:
//!
//! | code | severity | finding |
//! |------|----------|---------|
//! | D001 | deny | struct field never mentioned in its `impl Encode` |
//! | D002 | deny | struct field never mentioned in its `impl Decode` |
//! | D003 | deny | `HashMap`/`HashSet` in deterministic-output code |
//! | D004 | deny | wall-clock / OS entropy in the simulation clock domain |
//! | D005 | warn | type implements `Decode` but not `Encode` |
//! | D006 | warn | `lint: allow` without a `-- <reason>` justification |
//! | D007 | warn | `lint: allow` that suppresses nothing |
//!
//! Justified uses are documented in place, not silenced:
//! `// lint: allow(D003) -- <reason>` suppresses matching codes on its own
//! line, or — when the comment stands alone — on the next token-bearing
//! line. Test code (`#[cfg(test)]` items, `tests/` directories) is exempt.

pub mod lexer;
pub mod scan;

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use dichotomy_common::{Diagnostic, Locus, Severity};

use lexer::Token;

/// Crates whose *output order* reaches reports, receipts or metrics —
/// i.e. all of them: the workspace's whole point is seed-stable output, so
/// D003 applies everywhere (with `lint: allow` for the justified keyed-only
/// uses).
fn d003_applies(_crate_name: Option<&str>) -> bool {
    true
}

/// The simulation clock domain: crates where every timestamp must come from
/// the discrete-event scheduler, never the OS. `None` (unknown crate) gets
/// the strictest treatment.
fn d004_applies(crate_name: Option<&str>) -> bool {
    matches!(
        crate_name,
        None | Some("simnet") | Some("core") | Some("systems") | Some("consensus") | Some("txn")
    )
}

/// Identifiers that read the OS clock or OS entropy.
const WALL_CLOCK_IDENTS: &[&str] = &[
    "SystemTime",
    "RandomState",
    "OsRng",
    "thread_rng",
    "from_entropy",
];

/// Lint one file's source text. `file` is the path used in loci; `crate_name`
/// scopes the domain checks (derive it with [`crate_of`], or pass a chosen
/// domain in tests).
pub fn lint_source(file: &str, crate_name: Option<&str>, source: &str) -> Vec<Diagnostic> {
    let lexed = lexer::lex(source);
    let items = scan::scan(&lexed.tokens);
    let mut diags = Vec::new();

    // D001/D002: every named field of a struct with a codec impl must be
    // mentioned in the impl body. Structs and impls match file-locally —
    // the workspace defines codec impls next to their types.
    for (map, trait_name, code) in [
        (&items.encode_impls, "Encode", "D001"),
        (&items.decode_impls, "Decode", "D002"),
    ] {
        for (type_name, imp) in map {
            let Some(def) = items.structs.get(type_name) else {
                continue; // enums, tuple structs, foreign types
            };
            for (field, _) in &def.fields {
                if !imp.body_idents.contains(field) {
                    diags.push(
                        Diagnostic::new(
                            code,
                            Severity::Deny,
                            format!(
                                "field `{field}` of struct `{type_name}` never appears in \
                                 `impl {trait_name} for {type_name}`: the canonical codec \
                                 drops it (cache keys/round-trips lose the field)"
                            ),
                        )
                        .with_help(format!("{} the field or remove it from the struct", {
                            if code == "D001" {
                                "encode"
                            } else {
                                "decode"
                            }
                        }))
                        .at_source(file, imp.line),
                    );
                }
            }
        }
    }

    // D005: Decode without Encode — the pairing is asymmetric by design in
    // one direction only (hash-only types encode without decoding), so a
    // Decode-only type is almost certainly missing its Encode half.
    for (type_name, imp) in &items.decode_impls {
        if !items.encode_impls.contains_key(type_name) {
            diags.push(
                Diagnostic::new(
                    "D005",
                    Severity::Warn,
                    format!(
                        "`{type_name}` implements `Decode` but not `Encode` in this file: \
                         nothing can produce the bytes it decodes"
                    ),
                )
                .with_help("add the matching `impl Encode` next to it")
                .at_source(file, imp.line),
            );
        }
    }

    // Hazard scan over every live (non-test) token.
    let tokens = &lexed.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if items.dead[i] {
            continue;
        }
        let Some(ident) = token.ident() else { continue };
        if d003_applies(crate_name) && (ident == "HashMap" || ident == "HashSet") {
            diags.push(
                Diagnostic::new(
                    "D003",
                    Severity::Deny,
                    format!(
                        "`{ident}` has nondeterministic iteration order; report/receipt/\
                         metrics order must be seed-stable"
                    ),
                )
                .with_help(
                    "use BTreeMap/BTreeSet or a sorted drain; `lint: allow(D003)` with a \
                     reason for keyed-only access",
                )
                .at_source(file, token.line),
            );
        }
        if d004_applies(crate_name) {
            let wall = if WALL_CLOCK_IDENTS.contains(&ident) {
                Some(ident.to_string())
            } else if ident == "Instant" && followed_by_now(tokens, i) {
                Some("Instant::now".to_string())
            } else {
                None
            };
            if let Some(what) = wall {
                diags.push(
                    Diagnostic::new(
                        "D004",
                        Severity::Deny,
                        format!(
                            "`{what}` inside the simulation clock domain: simulated time \
                             and randomness must come from the scheduler and seeded RNGs"
                        ),
                    )
                    .with_help(
                        "thread the simulated clock / a seeded Rng through instead; \
                         `lint: allow(D004)` with a reason for wall-only measurements",
                    )
                    .at_source(file, token.line),
                );
            }
        }
    }

    apply_allows(file, &lexed, diags)
}

/// `Instant` `::` `now` — the call site, as opposed to the type in an
/// import or field position.
fn followed_by_now(tokens: &[Token], i: usize) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && tokens.get(i + 3).and_then(|t| t.ident()) == Some("now")
}

/// Apply `lint: allow` directives: suppress matching diagnostics on covered
/// lines, then report D006 (missing reason) and D007 (unused allow).
fn apply_allows(file: &str, lexed: &lexer::Lexed, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    // A directive covers its own line; a standalone comment also covers the
    // next token-bearing line.
    let covered_lines: Vec<BTreeSet<u32>> = lexed
        .allows
        .iter()
        .map(|a| {
            let mut lines = BTreeSet::from([a.line]);
            if a.standalone {
                if let Some(next) = lexed.tokens.iter().map(|t| t.line).find(|&l| l > a.line) {
                    lines.insert(next);
                }
            }
            lines
        })
        .collect();
    let mut used = vec![false; lexed.allows.len()];
    let mut out: Vec<Diagnostic> = diags
        .into_iter()
        .filter(|diag| {
            let Locus::Source { line, .. } = &diag.locus else {
                return true;
            };
            let mut suppressed = false;
            for (ai, allow) in lexed.allows.iter().enumerate() {
                if allow.codes.iter().any(|c| c == diag.code) && covered_lines[ai].contains(line) {
                    used[ai] = true;
                    suppressed = true;
                }
            }
            !suppressed
        })
        .collect();
    for (ai, allow) in lexed.allows.iter().enumerate() {
        if !allow.has_reason {
            out.push(
                Diagnostic::new(
                    "D006",
                    Severity::Warn,
                    format!(
                        "allow({}) has no `-- <reason>` justification",
                        allow.codes.join(", ")
                    ),
                )
                .with_help("document why the use is sound: `// lint: allow(CODE) -- reason`")
                .at_source(file, allow.line),
            );
        }
        if !used[ai] {
            out.push(
                Diagnostic::new(
                    "D007",
                    Severity::Warn,
                    format!(
                        "allow({}) suppresses nothing on its line{}",
                        allow.codes.join(", "),
                        if allow.standalone { " or the next" } else { "" }
                    ),
                )
                .with_help("remove the stale allow directive")
                .at_source(file, allow.line),
            );
        }
    }
    out.sort_by(|a, b| (locus_key(a), a.code).cmp(&(locus_key(b), b.code)));
    out
}

fn locus_key(d: &Diagnostic) -> (String, u32) {
    match &d.locus {
        Locus::Source { file, line } => (file.clone(), *line),
        _ => (String::new(), 0),
    }
}

/// The crate a workspace path belongs to: the component after `crates/`.
pub fn crate_of(path: &Path) -> Option<String> {
    let mut components = path.components();
    while let Some(c) = components.next() {
        if c.as_os_str() == "crates" {
            return components
                .next()
                .map(|c| c.as_os_str().to_string_lossy().into_owned());
        }
    }
    None
}

/// Collect the `.rs` files to audit under `root`, sorted for stable output.
/// Directories named `tests`, `benches`, `fixtures` or `target` (and hidden
/// ones) are skipped — test code is exempt, and lint fixtures are
/// deliberately violating. Explicitly passing a file path bypasses the
/// skip list, which is how the CI negative check lints a fixture.
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    walk(root, &mut files);
    files.sort();
    files
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name.as_str(), "tests" | "benches" | "fixtures" | "target")
                || name.starts_with('.')
            {
                continue;
            }
            walk(&path, files);
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
}

/// Lint a list of roots (files are linted directly; directories are walked
/// with the skip list). Returns all diagnostics, in path order.
pub fn lint_paths(roots: &[PathBuf]) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    for root in roots {
        if root.is_dir() {
            files.extend(collect_rs_files(root));
        } else {
            files.push(root.clone());
        }
    }
    let mut diags = Vec::new();
    for file in &files {
        let source = fs::read_to_string(file)?;
        let label = file.to_string_lossy();
        diags.extend(lint_source(&label, crate_of(file).as_deref(), &source));
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn crate_of_extracts_the_workspace_member() {
        assert_eq!(
            crate_of(Path::new("crates/core/src/scenario.rs")).as_deref(),
            Some("core")
        );
        assert_eq!(
            crate_of(Path::new("/root/repo/crates/lint/src/lib.rs")).as_deref(),
            Some("lint")
        );
        assert_eq!(crate_of(Path::new("scripts/ci.sh")), None);
    }

    #[test]
    fn d004_domain_is_the_simulation_clock_domain() {
        for c in ["simnet", "core", "systems", "consensus", "txn"] {
            assert!(d004_applies(Some(c)), "{c}");
        }
        assert!(
            d004_applies(None),
            "unknown crates get the strict treatment"
        );
        for c in ["bench", "lint", "merkle", "workload"] {
            assert!(!d004_applies(Some(c)), "{c}");
        }
    }
}
