//! `dichotomy-lint` — determinism & cache-soundness source auditor.
//!
//! ```text
//! dichotomy-lint [--json FILE] [PATH…]
//! ```
//!
//! Paths default to `crates` (the workspace). Directories are walked with
//! the skip list (tests/fixtures/target exempt); files are linted as given,
//! so fixtures can be checked explicitly. Exit 1 when any deny-level
//! diagnostic survives the allowlist.

use std::path::PathBuf;
use std::process::ExitCode;

use dichotomy_common::diag::{has_deny, to_json_array};
use dichotomy_common::Severity;

fn main() -> ExitCode {
    let mut json_path: Option<PathBuf> = None;
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => match args.next() {
                Some(path) => json_path = Some(PathBuf::from(path)),
                None => {
                    eprintln!("dichotomy-lint: --json needs a file path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: dichotomy-lint [--json FILE] [PATH...]");
                return ExitCode::SUCCESS;
            }
            _ => roots.push(PathBuf::from(arg)),
        }
    }
    if roots.is_empty() {
        roots.push(PathBuf::from("crates"));
    }

    let diags = match dichotomy_lint::lint_paths(&roots) {
        Ok(diags) => diags,
        Err(err) => {
            eprintln!("dichotomy-lint: {err}");
            return ExitCode::from(2);
        }
    };

    for diag in &diags {
        println!("{}", diag.render());
    }
    let denies = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    println!(
        "dichotomy-lint: {} finding{} ({} deny)",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" },
        denies
    );

    if let Some(path) = json_path {
        let doc = format!(
            "{{\"generator\":\"dichotomy-lint\",\"findings\":{},\"deny\":{},\"diagnostics\":{}}}\n",
            diags.len(),
            denies,
            to_json_array(&diags)
        );
        if let Err(err) = std::fs::write(&path, doc) {
            eprintln!("dichotomy-lint: writing {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }

    if has_deny(&diags) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
