//! Item scanner over the token stream: finds named-field structs, `impl
//! Encode for T` / `impl Decode for T` bodies, and `#[cfg(test)]`-gated
//! regions (test code is exempt from every check, matching the walker's
//! skipping of `tests/` directories).
//!
//! This is a recognizer, not a parser: it only understands the shapes the
//! checks need, and degrades safely (an item it cannot classify contributes
//! nothing — no false diagnostics, and the hazard scan still sees every
//! live token).

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, Token};

/// A named-field struct definition.
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Header line (`struct` keyword).
    pub line: u32,
    /// Named fields, in declaration order, with their lines.
    pub fields: Vec<(String, u32)>,
}

/// An `impl Encode for T` / `impl Decode for T` block.
#[derive(Debug, Clone)]
pub struct CodecImpl {
    /// Header line (`impl` keyword).
    pub line: u32,
    /// Every identifier appearing in the impl body.
    pub body_idents: BTreeSet<String>,
}

/// Everything the checks need from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    /// Named-field structs by name (tuple/unit structs and enums excluded).
    pub structs: BTreeMap<String, StructDef>,
    /// `impl Encode for T` blocks by type name `T`.
    pub encode_impls: BTreeMap<String, CodecImpl>,
    /// `impl Decode for T` blocks by type name `T`.
    pub decode_impls: BTreeMap<String, CodecImpl>,
    /// Indices of tokens inside `#[cfg(test)]`-gated items — dead to every
    /// check, including the hazard scan.
    pub dead: Vec<bool>,
}

/// Scan a token stream into [`FileItems`].
pub fn scan(tokens: &[Token]) -> FileItems {
    let mut items = FileItems {
        dead: vec![false; tokens.len()],
        ..FileItems::default()
    };
    let mut pos = 0usize;
    while pos < tokens.len() {
        if items.dead[pos] {
            pos += 1;
            continue;
        }
        match &tokens[pos].tok {
            Tok::Punct('#') => {
                let (end, is_test) = parse_attribute(tokens, pos);
                if is_test {
                    // Mark the attribute, any further attributes, and the
                    // gated item itself as dead.
                    let mut item_start = end;
                    while matches!(
                        tokens.get(item_start).map(|t| &t.tok),
                        Some(Tok::Punct('#'))
                    ) {
                        let (next, _) = parse_attribute(tokens, item_start);
                        item_start = next;
                    }
                    let item_end = item_end(tokens, item_start);
                    for slot in items.dead[pos..item_end].iter_mut() {
                        *slot = true;
                    }
                    pos = item_end;
                } else {
                    pos = end;
                }
            }
            Tok::Ident(kw) if kw == "struct" => {
                pos = parse_struct(tokens, pos, &mut items);
            }
            Tok::Ident(kw) if kw == "impl" => {
                pos = parse_impl(tokens, pos, &mut items);
            }
            _ => pos += 1,
        }
    }
    items
}

/// Parse `#[...]` / `#![...]` starting at the `#`. Returns (index past the
/// closing `]`, whether the attribute mentions `cfg` with `test` inside).
fn parse_attribute(tokens: &[Token], pos: usize) -> (usize, bool) {
    let mut i = pos + 1;
    if matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('!'))) {
        i += 1;
    }
    if !matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('['))) {
        return (i, false);
    }
    let start = i + 1;
    let mut depth = 1usize;
    i += 1;
    while i < tokens.len() && depth > 0 {
        match tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    let body = &tokens[start..i.saturating_sub(1)];
    let has = |name: &str| body.iter().any(|t| t.ident() == Some(name));
    // `#[cfg(test)]`, and conservatively any `#[cfg(any(test, ...))]`.
    let is_test = has("cfg") && has("test");
    (i, is_test)
}

/// Index one past the end of the item starting at `pos`: either past the
/// `;` that terminates it, or past the matching `}` of its first brace
/// block (tracking `(`/`[` nesting so a `{` inside parameters cannot be
/// missed as the body opener).
fn item_end(tokens: &[Token], pos: usize) -> usize {
    let mut i = pos;
    let mut round = 0i32;
    let mut square = 0i32;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('(') => round += 1,
            Tok::Punct(')') => round -= 1,
            Tok::Punct('[') => square += 1,
            Tok::Punct(']') => square -= 1,
            Tok::Punct(';') if round == 0 && square == 0 => return i + 1,
            Tok::Punct('{') if round == 0 && square == 0 => {
                return matching_brace(tokens, i) + 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Index of the `}` matching the `{` at `open` (or the last token when the
/// stream is truncated).
fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Parse a struct starting at the `struct` keyword. Registers named-field
/// structs; tuple and unit structs are skipped. Returns the resume index —
/// just past the header for brace structs (so types nested in field position
/// keep being scanned; there are none in practice, but it is harmless).
fn parse_struct(tokens: &[Token], pos: usize, items: &mut FileItems) -> usize {
    let Some(name) = tokens.get(pos + 1).and_then(|t| t.ident()) else {
        return pos + 1;
    };
    let line = tokens[pos].line;
    // Scan past generics / where clause to the body opener.
    let mut i = pos + 2;
    let mut angle = 0i32;
    while i < tokens.len() {
        match tokens[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('(') if angle == 0 => return i, // tuple struct
            Tok::Punct(';') if angle == 0 => return i + 1, // unit struct
            Tok::Punct('{') if angle == 0 => break,
            _ => {}
        }
        i += 1;
    }
    if i >= tokens.len() {
        return i;
    }
    let close = matching_brace(tokens, i);
    let fields = parse_fields(&tokens[i + 1..close]);
    items
        .structs
        .insert(name.to_string(), StructDef { line, fields });
    close + 1
}

/// Parse the named fields between a struct's braces: segments split on
/// depth-0 commas; a segment contributes a field when — after attributes
/// and visibility — it starts `ident :`. Commas inside generic arguments
/// split segments too, but those junk segments never look like `ident :`
/// and are dropped.
fn parse_fields(body: &[Token]) -> Vec<(String, u32)> {
    let mut fields = Vec::new();
    let mut segment_start = 0usize;
    let mut round = 0i32;
    let mut square = 0i32;
    let mut brace = 0i32;
    for (i, token) in body.iter().enumerate() {
        match token.tok {
            Tok::Punct('(') => round += 1,
            Tok::Punct(')') => round -= 1,
            Tok::Punct('[') => square += 1,
            Tok::Punct(']') => square -= 1,
            Tok::Punct('{') => brace += 1,
            Tok::Punct('}') => brace -= 1,
            Tok::Punct(',') if round == 0 && square == 0 && brace == 0 => {
                if let Some(field) = segment_field(&body[segment_start..i]) {
                    fields.push(field);
                }
                segment_start = i + 1;
            }
            _ => {}
        }
    }
    if let Some(field) = segment_field(&body[segment_start..]) {
        fields.push(field);
    }
    fields
}

/// `#[attr…] pub(crate) name : Type` → `(name, line)`.
fn segment_field(segment: &[Token]) -> Option<(String, u32)> {
    let mut i = 0usize;
    while i < segment.len() {
        match &segment[i].tok {
            Tok::Punct('#') => {
                // Skip the attribute's `[...]`.
                i += 1;
                if matches!(segment.get(i).map(|t| &t.tok), Some(Tok::Punct('['))) {
                    let mut depth = 0i32;
                    while i < segment.len() {
                        match segment[i].tok {
                            Tok::Punct('[') => depth += 1,
                            Tok::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    i += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        i += 1;
                    }
                }
            }
            Tok::Ident(kw) if kw == "pub" => {
                i += 1;
                if matches!(segment.get(i).map(|t| &t.tok), Some(Tok::Punct('('))) {
                    while i < segment.len() && !segment[i].is_punct(')') {
                        i += 1;
                    }
                    i += 1;
                }
            }
            Tok::Ident(name) => {
                return matches!(segment.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':')))
                    .then(|| (name.clone(), segment[i].line));
            }
            _ => return None,
        }
    }
    None
}

/// Parse an `impl` starting at the keyword. Registers `Encode`/`Decode`
/// trait impls; anything else (inherent impls, other traits, `-> impl
/// Trait` return types that happen to lex the same way) is walked past
/// without registering. Returns the resume index: *inside* the body, so
/// nested items are still discovered.
fn parse_impl(tokens: &[Token], pos: usize, items: &mut FileItems) -> usize {
    let line = tokens[pos].line;
    let mut i = pos + 1;
    // Skip `<generics>` (arrows are merged tokens, so `>`-counting is safe).
    if matches!(tokens.get(i).map(|t| &t.tok), Some(Tok::Punct('<'))) {
        let mut depth = 0i32;
        while i < tokens.len() {
            match tokens[i].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    // Trait path: idents at angle depth 0 until `for` or the body `{`.
    let mut trait_name: Option<&str> = None;
    let mut saw_for = false;
    let mut angle = 0i32;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('{') if angle == 0 => break,
            Tok::Ident(id) if angle == 0 && id == "for" => {
                saw_for = true;
                i += 1;
                break;
            }
            Tok::Ident(id) if angle == 0 => trait_name = Some(id),
            _ => {}
        }
        i += 1;
    }
    // Self type: the last path ident before generics / the body.
    let mut type_name: Option<&str> = None;
    if saw_for {
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i].tok {
                Tok::Punct('<') => angle += 1,
                Tok::Punct('>') => angle -= 1,
                Tok::Punct('{') if angle == 0 => break,
                Tok::Ident(id) if angle == 0 && id == "where" => {
                    // `where` clause: scan on to the body without touching
                    // the recorded type name.
                    while i < tokens.len() && !tokens[i].is_punct('{') {
                        i += 1;
                    }
                    break;
                }
                Tok::Ident(id) if angle == 0 && id != "dyn" && id != "mut" && id != "as" => {
                    type_name = Some(id);
                }
                _ => {}
            }
            i += 1;
        }
    }
    // `i` is at the body `{` (or past the stream for malformed input).
    if i >= tokens.len() || !tokens[i].is_punct('{') {
        return i;
    }
    let close = matching_brace(tokens, i);
    if saw_for {
        if let (Some(trait_name), Some(type_name)) = (trait_name, type_name) {
            if trait_name == "Encode" || trait_name == "Decode" {
                let body_idents: BTreeSet<String> = tokens[i + 1..close]
                    .iter()
                    .filter_map(|t| t.ident().map(str::to_string))
                    .collect();
                let map = if trait_name == "Encode" {
                    &mut items.encode_impls
                } else {
                    &mut items.decode_impls
                };
                map.entry(type_name.to_string())
                    .and_modify(|existing| existing.body_idents.extend(body_idents.iter().cloned()))
                    .or_insert(CodecImpl { line, body_idents });
            }
        }
    }
    i + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str) -> FileItems {
        scan(&lex(src).tokens)
    }

    #[test]
    fn named_fields_found_generics_commas_ignored() {
        let src = "
pub struct Probe<T: Clone> where T: Send {
    #[doc = \"x\"]
    pub a: u64,
    pub(crate) map: BTreeMap<String, Vec<u8>>,
    b: fn(u64, u64) -> u64,
}
struct Tuple(u64, u64);
struct Unit;
enum E { A { x: u64 } }
";
        let items = scan_src(src);
        assert_eq!(items.structs.len(), 1);
        let fields: Vec<&str> = items.structs["Probe"]
            .fields
            .iter()
            .map(|(f, _)| f.as_str())
            .collect();
        assert_eq!(fields, vec!["a", "map", "b"]);
    }

    #[test]
    fn encode_impls_collect_body_idents() {
        let src = "
impl Encode for Probe {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.a.encode_into(out);
    }
}
impl<T: Encode> Encode for Vec<T> {
    fn encode_into(&self, out: &mut Vec<u8>) {}
}
impl Decode for Probe {
    fn decode_from(input: &mut &[u8]) -> Option<Self> { None }
}
impl Probe { fn inherent(&self) { for x in 0..2 { let _ = x; } } }
";
        let items = scan_src(src);
        assert!(items.encode_impls["Probe"].body_idents.contains("a"));
        assert!(items.encode_impls.contains_key("Vec"));
        assert!(items.decode_impls.contains_key("Probe"));
    }

    #[test]
    fn cfg_test_items_are_dead() {
        let src = "
use std::collections::BTreeMap;
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    struct Hidden { x: u64 }
}
struct Visible { y: u64 }
";
        let items = scan_src(src);
        assert!(!items.structs.contains_key("Hidden"));
        assert!(items.structs.contains_key("Visible"));
        let tokens = lex(src).tokens;
        let live_idents: Vec<&str> = tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| !items.dead[*i])
            .filter_map(|(_, t)| t.ident())
            .collect();
        assert!(!live_idents.contains(&"HashMap"));
        assert!(live_idents.contains(&"BTreeMap"));
    }

    #[test]
    fn return_position_impl_trait_registers_nothing() {
        let src = "
fn f() -> impl Iterator<Item = u8> {
    struct Local { z: u8 }
    std::iter::empty()
}
";
        let items = scan_src(src);
        assert!(items.encode_impls.is_empty() && items.decode_impls.is_empty());
        // The scanner resumes inside the body: the local struct is found.
        assert!(items.structs.contains_key("Local"));
    }
}
