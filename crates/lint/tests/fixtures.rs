//! Every diagnostic code proven live against a fixture, and proven
//! suppressible by its `lint: allow` counterpart. The fixtures live under
//! `tests/fixtures/` — a directory the workspace walker skips, so they only
//! lint when named explicitly (which is also how `ci.sh` proves the lint
//! stage can fail).

use std::path::{Path, PathBuf};

use dichotomy_common::{Diagnostic, Severity};
use dichotomy_lint::{lint_paths, lint_source};

fn fixture_path(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lint one fixture under a chosen crate domain.
fn lint_fixture(name: &str, crate_name: Option<&str>) -> Vec<Diagnostic> {
    let source = std::fs::read_to_string(fixture_path(name)).unwrap();
    lint_source(name, crate_name, &source)
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn d001_fires_on_field_dropping_encode() {
    let diags = lint_fixture("d001_drop_field.rs", Some("core"));
    assert_eq!(codes(&diags), vec!["D001"]);
    assert_eq!(diags[0].severity, Severity::Deny);
    assert!(
        diags[0].message.contains("latency_us"),
        "{}",
        diags[0].message
    );
    assert!(diags[0].message.contains("Receipt"), "{}", diags[0].message);
}

#[test]
fn d001_suppressed_by_allow() {
    assert_eq!(
        codes(&lint_fixture("d001_allowed.rs", Some("core"))),
        Vec::<&str>::new()
    );
}

#[test]
fn d002_fires_on_field_dropping_decode() {
    let diags = lint_fixture("d002_drop_field.rs", Some("core"));
    assert_eq!(codes(&diags), vec!["D002"]);
    assert_eq!(diags[0].severity, Severity::Deny);
    assert!(diags[0].message.contains("flags"), "{}", diags[0].message);
}

#[test]
fn d002_suppressed_by_allow() {
    assert_eq!(
        codes(&lint_fixture("d002_allowed.rs", Some("core"))),
        Vec::<&str>::new()
    );
}

#[test]
fn d003_fires_on_hashmap() {
    let diags = lint_fixture("d003_hashmap.rs", Some("core"));
    assert!(!diags.is_empty());
    assert!(diags
        .iter()
        .all(|d| d.code == "D003" && d.severity == Severity::Deny));
}

#[test]
fn d003_fires_in_every_crate_domain() {
    // Seed-stable output is the workspace's whole point: no crate is exempt.
    for domain in [None, Some("workload"), Some("lint"), Some("merkle")] {
        let diags = lint_fixture("d003_hashmap.rs", domain);
        assert!(!diags.is_empty(), "domain {domain:?} should not be exempt");
    }
}

#[test]
fn d003_suppressed_by_allow() {
    assert_eq!(
        codes(&lint_fixture("d003_allowed.rs", Some("core"))),
        Vec::<&str>::new()
    );
}

#[test]
fn d004_fires_in_sim_clock_domain() {
    let diags = lint_fixture("d004_wall_clock.rs", Some("core"));
    // `Instant::now` and `SystemTime`; the bare `Instant` import stays quiet.
    assert_eq!(codes(&diags), vec!["D004", "D004", "D004"]);
    assert!(diags.iter().all(|d| d.severity == Severity::Deny));
    assert!(diags.iter().any(|d| d.message.contains("Instant::now")));
    assert!(diags.iter().any(|d| d.message.contains("SystemTime")));
}

#[test]
fn d004_quiet_outside_sim_clock_domain() {
    // `workload` generates inputs from seeded RNGs but owns no simulated
    // clock; the wall-clock check is scoped to the sim-clock crates.
    assert_eq!(
        codes(&lint_fixture("d004_wall_clock.rs", Some("workload"))),
        Vec::<&str>::new()
    );
}

#[test]
fn d004_suppressed_by_allow() {
    assert_eq!(
        codes(&lint_fixture("d004_allowed.rs", Some("core"))),
        Vec::<&str>::new()
    );
}

#[test]
fn d005_fires_on_decode_without_encode() {
    let diags = lint_fixture("d005_decode_only.rs", Some("core"));
    assert_eq!(codes(&diags), vec!["D005"]);
    assert_eq!(diags[0].severity, Severity::Warn);
    assert!(
        diags[0].message.contains("Snapshot"),
        "{}",
        diags[0].message
    );
}

#[test]
fn d005_suppressed_by_allow() {
    assert_eq!(
        codes(&lint_fixture("d005_allowed.rs", Some("core"))),
        Vec::<&str>::new()
    );
}

#[test]
fn d006_reasonless_allow_warns_but_still_suppresses() {
    let diags = lint_fixture("d006_missing_reason.rs", Some("core"));
    // Two reasonless allows, each covering one HashSet line: the D003s are
    // suppressed, the directives themselves earn D006.
    assert_eq!(codes(&diags), vec!["D006", "D006"]);
    assert!(diags.iter().all(|d| d.severity == Severity::Warn));
}

#[test]
fn d007_fires_on_unused_allow() {
    let diags = lint_fixture("d007_unused_allow.rs", Some("core"));
    assert_eq!(codes(&diags), vec!["D007"]);
    assert_eq!(diags[0].severity, Severity::Warn);
}

#[test]
fn clean_fixture_has_zero_findings() {
    // Includes a `#[cfg(test)]` HashMap: test-only code is exempt.
    assert_eq!(
        codes(&lint_fixture("clean.rs", Some("core"))),
        Vec::<&str>::new()
    );
}

#[test]
fn explicit_fixture_path_lints_and_denies() {
    // The walker skips `tests/fixtures/` directories, but an explicitly
    // named file always lints — this is the hook ci.sh uses to prove the
    // lint stage can fail.
    let diags = lint_paths(&[fixture_path("d003_hashmap.rs")]).unwrap();
    assert!(dichotomy_common::diag::has_deny(&diags));
}

#[test]
fn fixtures_directory_is_skipped_by_the_walker() {
    let diags = lint_paths(&[Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()]).unwrap();
    assert_eq!(
        codes(&diags),
        Vec::<&str>::new(),
        "src/ must be clean and fixtures skipped"
    );
}
