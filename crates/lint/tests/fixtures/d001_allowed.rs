//! Fixture: the same field-dropping `Encode` impl, justified by an allow
//! directive — D001 suppressed.

pub struct Receipt {
    pub id: u64,
    pub latency_us: u64,
}

// lint: allow(D001) -- fixture: digest-style codec intentionally omits the derived field
impl Encode for Receipt {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
    }
}

impl Decode for Receipt {
    fn decode(r: &mut Reader) -> Option<Self> {
        let id = u64::decode(r)?;
        Some(Receipt { id, latency_us: id })
    }
}
