//! Fixture: `HashMap` in live code — nondeterministic iteration order, D003.

use std::collections::HashMap;

pub fn histogram(values: &[u64]) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for v in values {
        *counts.entry(*v).or_insert(0) += 1;
    }
    counts
}
