//! Fixture: a clean file — complete `Encode`/`Decode` pair over every field,
//! ordered collections only, and a `#[cfg(test)]` item whose `HashMap` is
//! exempt (test code never reaches a report).

use std::collections::BTreeMap;

pub struct Entry {
    pub key: u64,
    pub value: u64,
}

impl Encode for Entry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.value.encode(out);
    }
}

impl Decode for Entry {
    fn decode(r: &mut Reader) -> Option<Self> {
        let key = u64::decode(r)?;
        let value = u64::decode(r)?;
        Some(Entry { key, value })
    }
}

pub fn index(entries: &[Entry]) -> BTreeMap<u64, u64> {
    entries.iter().map(|e| (e.key, e.value)).collect()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn scratch_map_is_fine_here() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m[&1], 2);
    }
}
