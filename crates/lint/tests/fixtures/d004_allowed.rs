//! Fixture: justified wall-clock read — D004 suppressed. The `use` line
//! only names `Instant` without `::now`, so the import itself never fires.

use std::time::Instant;

pub fn wall_elapsed_us() -> u128 {
    // lint: allow(D004) -- fixture: wall-only harness timing; never enters a report
    let t0 = Instant::now();
    t0.elapsed().as_micros()
}
