//! Fixture: wall-clock reads inside the simulation clock domain — D004.

use std::time::{Instant, SystemTime};

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let _wall = SystemTime::now();
    t0.elapsed().as_micros()
}
