//! Fixture: justified one-way `Decode` — D005 suppressed.

pub struct Snapshot {
    pub height: u64,
    pub root: [u8; 32],
}

// lint: allow(D005) -- fixture: bytes come from a foreign writer; this side only reads
impl Decode for Snapshot {
    fn decode(r: &mut Reader) -> Option<Self> {
        let height = u64::decode(r)?;
        let root = <[u8; 32]>::decode(r)?;
        Some(Snapshot { height, root })
    }
}
