//! Fixture: allow directive without a `-- reason` — it still suppresses the
//! underlying D003, but earns a D006 warning.

// lint: allow(D003)
use std::collections::HashSet;

pub fn dedup_count(values: &[u64]) -> usize {
    // lint: allow(D003)
    let set: HashSet<u64> = values.iter().copied().collect();
    set.len()
}
