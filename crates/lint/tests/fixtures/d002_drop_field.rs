//! Fixture: the `Decode` impl never mentions `flags`, so round-tripping
//! loses the field — D002.

pub struct Row {
    pub key: u64,
    pub flags: u32,
}

impl Encode for Row {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.flags.encode(out);
    }
}

impl Decode for Row {
    fn decode(r: &mut Reader) -> Option<Self> {
        let key = u64::decode(r)?;
        Some(Row {
            key,
            ..Default::default()
        })
    }
}
