//! Fixture: justified `HashSet` — membership-only, D003 suppressed.

// lint: allow(D003) -- fixture: contains-then-insert dedup; iteration order never observed
use std::collections::HashSet;

pub fn has_duplicates(values: &[u64]) -> bool {
    // lint: allow(D003) -- fixture: membership-only set
    let mut seen = HashSet::new();
    values.iter().any(|v| !seen.insert(*v))
}
