//! Fixture: a stale allow that suppresses nothing — D007.

// lint: allow(D003) -- fixture: this reason is stale, the map below is a BTreeMap
use std::collections::BTreeMap;

pub fn histogram(values: &[u64]) -> BTreeMap<u64, u64> {
    let mut counts = BTreeMap::new();
    for v in values {
        *counts.entry(*v).or_insert(0) += 1;
    }
    counts
}
