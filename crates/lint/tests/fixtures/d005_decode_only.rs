//! Fixture: `Decode` without a matching `Encode` in the same file — D005.
//! The body mentions every field, so D002 stays quiet.

pub struct Snapshot {
    pub height: u64,
    pub root: [u8; 32],
}

impl Decode for Snapshot {
    fn decode(r: &mut Reader) -> Option<Self> {
        let height = u64::decode(r)?;
        let root = <[u8; 32]>::decode(r)?;
        Some(Snapshot { height, root })
    }
}
