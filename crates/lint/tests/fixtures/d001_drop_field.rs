//! Fixture: the `Encode` impl drops `latency_us`, so every cache key and
//! round-trip built from these bytes silently loses the field — D001.

pub struct Receipt {
    pub id: u64,
    pub latency_us: u64,
}

impl Encode for Receipt {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
    }
}

impl Decode for Receipt {
    fn decode(r: &mut Reader) -> Option<Self> {
        let id = u64::decode(r)?;
        let latency_us = u64::decode(r)?;
        Some(Receipt { id, latency_us })
    }
}
