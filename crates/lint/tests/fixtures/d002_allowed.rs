//! Fixture: the field-dropping `Decode` impl, justified — D002 suppressed.

pub struct Row {
    pub key: u64,
    pub flags: u32,
}

impl Encode for Row {
    fn encode(&self, out: &mut Vec<u8>) {
        self.key.encode(out);
        self.flags.encode(out);
    }
}

// lint: allow(D002) -- fixture: flags is a transient runtime hint, reset on load by design
impl Decode for Row {
    fn decode(r: &mut Reader) -> Option<Self> {
        let key = u64::decode(r)?;
        Some(Row {
            key,
            ..Default::default()
        })
    }
}
