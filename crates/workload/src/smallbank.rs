//! The Smallbank OLTP benchmark (Figure 6).
//!
//! Six procedures over per-customer checking and savings accounts:
//! `Balance`, `DepositChecking`, `TransactSavings`, `Amalgamate`,
//! `WriteCheck` and `SendPayment`. Compared with YCSB (Section 5.1.2), a
//! Smallbank transaction touches up to two customers (four records), carries
//! application-level constraints (sufficient funds), and uses small records —
//! the combination that narrows the blockchain/database gap in the paper's
//! measurements.

use dichotomy_common::rng::{self, Rng, StdRng};
use dichotomy_common::{ClientId, Encode, Key, KeyPair, Operation, Transaction, TxnId, Value};

use crate::zipf::ZipfianGenerator;
use crate::Workload;

/// The six Smallbank procedures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Procedure {
    /// Read both balances of one customer.
    Balance,
    /// Add to a customer's checking balance.
    DepositChecking,
    /// Add to a customer's savings balance.
    TransactSavings,
    /// Move a customer's savings into another's checking.
    Amalgamate,
    /// Write a check against a customer (may overdraw: constraint check).
    WriteCheck,
    /// Transfer between two customers' checking accounts.
    SendPayment,
}

impl Procedure {
    const ALL: [Procedure; 6] = [
        Procedure::Balance,
        Procedure::DepositChecking,
        Procedure::TransactSavings,
        Procedure::Amalgamate,
        Procedure::WriteCheck,
        Procedure::SendPayment,
    ];
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct SmallbankConfig {
    /// Number of customer accounts (the paper uses 1 M).
    pub accounts: u64,
    /// Zipfian skew over customers (the paper uses θ = 1).
    pub zipf_theta: f64,
    /// Bytes per balance record (Smallbank records are small).
    pub record_size: usize,
    /// Whether to sign transactions.
    pub sign_transactions: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SmallbankConfig {
    fn default() -> Self {
        SmallbankConfig {
            accounts: 1_000_000,
            zipf_theta: 1.0,
            record_size: 16,
            sign_transactions: true,
            seed: dichotomy_common::rng::DEFAULT_SEED,
        }
    }
}

impl Encode for SmallbankConfig {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.accounts.encode_into(out);
        self.zipf_theta.encode_into(out);
        (self.record_size as u64).encode_into(out);
        self.sign_transactions.encode_into(out);
        self.seed.encode_into(out);
    }
}

/// The Smallbank workload generator.
pub struct SmallbankWorkload {
    config: SmallbankConfig,
    zipf: ZipfianGenerator,
    rng: StdRng,
}

impl SmallbankWorkload {
    /// Build the workload.
    pub fn new(config: SmallbankConfig) -> Self {
        let zipf = ZipfianGenerator::new(config.accounts, config.zipf_theta, config.seed);
        let rng = rng::seeded(rng::derive_seed(config.seed, "smallbank"));
        SmallbankWorkload { config, zipf, rng }
    }

    /// Checking-account key of a customer.
    pub fn checking_key(customer: u64) -> Key {
        Key::from_str(&format!("chk:{customer:09}"))
    }

    /// Savings-account key of a customer.
    pub fn savings_key(customer: u64) -> Key {
        Key::from_str(&format!("sav:{customer:09}"))
    }

    fn value(&self) -> Value {
        Value::filler(self.config.record_size)
    }

    fn build_ops(&mut self, proc: Procedure, a: u64, b: u64) -> Vec<Operation> {
        let v = self.value();
        match proc {
            Procedure::Balance => vec![
                Operation::read(Self::checking_key(a)),
                Operation::read(Self::savings_key(a)),
            ],
            Procedure::DepositChecking => {
                vec![Operation::read_modify_write(Self::checking_key(a), v)]
            }
            Procedure::TransactSavings => {
                vec![Operation::read_modify_write(Self::savings_key(a), v)]
            }
            Procedure::Amalgamate => vec![
                Operation::read_modify_write(Self::savings_key(a), self.value()),
                Operation::read_modify_write(Self::checking_key(b), v),
            ],
            Procedure::WriteCheck => vec![
                Operation::read(Self::savings_key(a)),
                Operation::read_modify_write(Self::checking_key(a), v),
            ],
            Procedure::SendPayment => vec![
                Operation::read_modify_write(Self::checking_key(a), self.value()),
                Operation::read_modify_write(Self::checking_key(b), v),
            ],
        }
    }
}

impl Workload for SmallbankWorkload {
    fn initial_records(&self) -> Vec<(Key, Value)> {
        let mut records = Vec::with_capacity(self.config.accounts as usize * 2);
        for c in 0..self.config.accounts {
            records.push((
                Self::checking_key(c),
                Value::filler(self.config.record_size),
            ));
            records.push((Self::savings_key(c), Value::filler(self.config.record_size)));
        }
        records
    }

    fn next_transaction(&mut self, client: ClientId, seq: u64) -> Transaction {
        let proc = Procedure::ALL[self.rng.gen_range(0..Procedure::ALL.len())];
        let a = self.zipf.next();
        let mut b = self.zipf.next();
        if b == a {
            b = (a + 1) % self.config.accounts.max(1);
        }
        let ops = self.build_ops(proc, a, b);
        let id = TxnId::new(client, seq);
        if self.config.sign_transactions {
            Transaction::signed(id, ops, 0, &KeyPair::for_client(client.0))
        } else {
            Transaction::new(id, ops)
        }
    }

    fn name(&self) -> &'static str {
        "Smallbank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SmallbankWorkload {
        SmallbankWorkload::new(SmallbankConfig {
            accounts: 1000,
            ..SmallbankConfig::default()
        })
    }

    #[test]
    fn initial_records_cover_both_account_types() {
        let w = small();
        let records = w.initial_records();
        assert_eq!(records.len(), 2000);
        assert!(records
            .iter()
            .any(|(k, _)| k.to_string().starts_with("chk:")));
        assert!(records
            .iter()
            .any(|(k, _)| k.to_string().starts_with("sav:")));
        assert!(records.iter().all(|(_, v)| v.len() == 16));
    }

    #[test]
    fn transactions_touch_at_most_four_records() {
        let mut w = small();
        for seq in 0..200 {
            let t = w.next_transaction(ClientId(1), seq);
            assert!((1..=4).contains(&t.op_count()), "{} ops", t.op_count());
            assert!(t.verify_signature());
        }
    }

    #[test]
    fn some_transactions_are_read_only_and_some_cross_customer() {
        let mut w = small();
        let mut read_only = 0;
        let mut two_customers = 0;
        for seq in 0..500 {
            let t = w.next_transaction(ClientId(1), seq);
            if t.is_read_only() {
                read_only += 1;
            }
            let customers: std::collections::HashSet<String> = t
                .ops
                .iter()
                .map(|o| o.key.to_string()[4..].to_string())
                .collect();
            if customers.len() > 1 {
                two_customers += 1;
            }
        }
        assert!(read_only > 20, "read-only {read_only}");
        assert!(two_customers > 50, "cross-customer {two_customers}");
    }

    #[test]
    fn skew_produces_hot_accounts() {
        let mut w = SmallbankWorkload::new(SmallbankConfig {
            accounts: 100_000,
            zipf_theta: 1.0,
            ..SmallbankConfig::default()
        });
        let mut counts = std::collections::HashMap::new();
        for seq in 0..2000 {
            let t = w.next_transaction(ClientId(1), seq);
            for op in &t.ops {
                *counts.entry(op.key.clone()).or_insert(0u32) += 1;
            }
        }
        assert!(counts.values().max().copied().unwrap_or(0) > 30);
    }

    #[test]
    fn payments_never_target_the_same_account_twice() {
        let mut w = small();
        for seq in 0..300 {
            let t = w.next_transaction(ClientId(2), seq);
            let mut keys: Vec<_> = t.ops.iter().map(|o| &o.key).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), t.op_count(), "duplicate key in {t:?}");
        }
    }
}
