//! A Zipfian key chooser, implemented the way the YCSB reference
//! implementation does it (Gray et al.'s rejection-free method), so that
//! θ = 0 degenerates to uniform and θ = 1 produces the heavy skew the paper's
//! contention experiments use.

use dichotomy_common::rng::{self, Rng, StdRng};

/// Zipfian generator over `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2: f64,
    rng: StdRng,
}

impl ZipfianGenerator {
    /// Build a generator over `0..n` with skew `theta` (0 = uniform-ish,
    /// 0.99–1.0 = the classic YCSB hotspot).
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        let n = n.max(1);
        let theta = theta.clamp(0.0, 0.9999);
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfianGenerator {
            n,
            theta,
            alpha,
            zetan,
            eta,
            zeta2,
            rng: rng::seeded(rng::derive_seed(seed, "zipfian")),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // For large n an exact sum is O(n); cap the exact part and extend with
        // the integral approximation, which is accurate for the n (≤ 1M) and
        // θ values the experiments use.
        let exact = n.min(100_000);
        let mut sum = 0.0;
        for i in 1..=exact {
            sum += 1.0 / (i as f64).powf(theta);
        }
        if n > exact {
            // ∫ x^-θ dx from `exact` to `n`.
            if (theta - 1.0).abs() < 1e-9 {
                sum += (n as f64 / exact as f64).ln();
            } else {
                sum += ((n as f64).powf(1.0 - theta) - (exact as f64).powf(1.0 - theta))
                    / (1.0 - theta);
            }
        }
        sum
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw the next key index in `0..n`. Index 0 is the hottest key. (Not
    /// an `Iterator`: the stream is infinite and infallible.)
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        if self.theta < 1e-6 {
            return self.rng.gen_range(0..self.n);
        }
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let spread = (self.eta * u - self.eta + 1.0).powf(self.alpha);
        ((self.n as f64) * spread) as u64 % self.n
    }

    /// Keep the compiler honest about the precomputed constant (used by the
    /// statistics test below and by documentation examples).
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(theta: f64, n: u64, draws: usize) -> Vec<u64> {
        let mut gen = ZipfianGenerator::new(n, theta, 7);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[gen.next() as usize] += 1;
        }
        counts
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let counts = frequencies(0.0, 100, 100_000);
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "max {max} min {min}");
    }

    #[test]
    fn high_theta_concentrates_on_hot_keys() {
        let counts = frequencies(0.99, 10_000, 100_000);
        let hot: u64 = counts.iter().take(10).sum();
        let share = hot as f64 / 100_000.0;
        assert!(share > 0.25, "top-10 share {share}");
    }

    #[test]
    fn skew_increases_with_theta() {
        let share = |theta: f64| {
            let counts = frequencies(theta, 1_000, 50_000);
            *counts.iter().max().unwrap() as f64 / 50_000.0
        };
        let s0 = share(0.2);
        let s1 = share(0.6);
        let s2 = share(0.99);
        assert!(s1 > s0);
        assert!(s2 > s1);
    }

    #[test]
    fn draws_stay_in_range_and_are_deterministic() {
        let mut a = ZipfianGenerator::new(50, 0.8, 3);
        let mut b = ZipfianGenerator::new(50, 0.8, 3);
        for _ in 0..1000 {
            let x = a.next();
            assert!(x < 50);
            assert_eq!(x, b.next());
        }
        assert!(a.zeta2() > 0.0);
        assert!((a.theta() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn single_key_universe_always_returns_zero() {
        let mut g = ZipfianGenerator::new(1, 0.9, 1);
        assert!((0..100).all(|_| g.next() == 0));
    }
}
