//! Workload generators (Section 4.2 / Table 3).
//!
//! Two workloads drive every experiment in the paper:
//!
//! * [`ycsb`] — the YCSB core workload: keys drawn uniformly or from a
//!   Zipfian distribution over a pre-loaded table, with the record size,
//!   operations-per-transaction and read/write mix as knobs (Table 3's
//!   parameters: record size 10–5 000 B, θ ∈ [0, 1], 1–10 ops/txn).
//! * [`smallbank`] — the OLTP Smallbank benchmark: six short banking
//!   procedures over checking/savings accounts with application-level
//!   constraints, used for Figure 6.
//!
//! Both implement the [`Workload`] trait so the driver and benches can treat
//! them uniformly.

pub mod smallbank;
pub mod spec;
pub mod ycsb;
pub mod zipf;

pub use smallbank::{SmallbankConfig, SmallbankWorkload};
pub use spec::WorkloadSpec;
pub use ycsb::{YcsbConfig, YcsbMix, YcsbWorkload};
pub use zipf::ZipfianGenerator;

use dichotomy_common::{ClientId, Key, Transaction, Value};

/// A stream of transactions plus the initial data set to load.
pub trait Workload {
    /// The records to pre-populate the system with.
    fn initial_records(&self) -> Vec<(Key, Value)>;

    /// Generate the next transaction for `client` with sequence number `seq`.
    fn next_transaction(&mut self, client: ClientId, seq: u64) -> Transaction;

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}
