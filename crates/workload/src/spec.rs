//! Declarative workload descriptions.
//!
//! A [`WorkloadSpec`] names a workload — YCSB with its Table 3 knobs, or
//! Smallbank — as plain data, so experiment plans can carry workloads around,
//! sweep their parameters and build fresh generator instances per run. This
//! is the workload half of the Scenario API: the system half is
//! `dichotomy_systems::SystemSpec`.

use crate::smallbank::SmallbankConfig;
use crate::ycsb::{YcsbConfig, YcsbMix};
use crate::{SmallbankWorkload, Workload, YcsbWorkload};

/// A nameable, buildable workload description.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// The YCSB core workload (Table 3 knobs).
    Ycsb(YcsbConfig),
    /// The Smallbank OLTP benchmark.
    Smallbank(SmallbankConfig),
}

impl WorkloadSpec {
    /// A YCSB spec at the paper's defaults with the given mix.
    pub fn ycsb(mix: YcsbMix) -> Self {
        WorkloadSpec::Ycsb(YcsbConfig {
            mix,
            ..YcsbConfig::default()
        })
    }

    /// A Smallbank spec at the paper's defaults.
    pub fn smallbank() -> Self {
        WorkloadSpec::Smallbank(SmallbankConfig::default())
    }

    /// Short name for reports (matches [`Workload::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadSpec::Ycsb(_) => "YCSB",
            WorkloadSpec::Smallbank(_) => "Smallbank",
        }
    }

    /// Build a fresh generator. Every call returns an independent instance
    /// whose streams are fully determined by the spec's seed.
    pub fn build(&self) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Ycsb(config) => Box::new(YcsbWorkload::new(config.clone())),
            WorkloadSpec::Smallbank(config) => Box::new(SmallbankWorkload::new(config.clone())),
        }
    }

    /// The RNG seed the built generator will use.
    pub fn seed(&self) -> u64 {
        match self {
            WorkloadSpec::Ycsb(c) => c.seed,
            WorkloadSpec::Smallbank(c) => c.seed,
        }
    }

    /// Replace the RNG seed (plans thread one seed through every component).
    pub fn with_seed(mut self, seed: u64) -> Self {
        match &mut self {
            WorkloadSpec::Ycsb(c) => c.seed = seed,
            WorkloadSpec::Smallbank(c) => c.seed = seed,
        }
        self
    }

    /// Replace the number of pre-loaded records / accounts.
    pub fn with_records(mut self, records: u64) -> Self {
        match &mut self {
            WorkloadSpec::Ycsb(c) => c.record_count = records,
            WorkloadSpec::Smallbank(c) => c.accounts = records,
        }
        self
    }

    /// Replace the Zipfian skew θ (both workloads draw keys Zipf-distributed).
    pub fn with_theta(mut self, theta: f64) -> Self {
        match &mut self {
            WorkloadSpec::Ycsb(c) => c.zipf_theta = theta,
            WorkloadSpec::Smallbank(c) => c.zipf_theta = theta,
        }
        self
    }

    /// Replace the record size in bytes.
    pub fn with_record_size(mut self, size: usize) -> Self {
        match &mut self {
            WorkloadSpec::Ycsb(c) => c.record_size = size,
            WorkloadSpec::Smallbank(c) => c.record_size = size,
        }
        self
    }

    /// Replace the operations-per-transaction count (YCSB only; Smallbank's
    /// procedures fix their own shapes, so this is a no-op there).
    pub fn with_ops_per_txn(mut self, ops: usize) -> Self {
        if let WorkloadSpec::Ycsb(c) = &mut self {
            c.ops_per_txn = ops.max(1);
        }
        self
    }
}

impl dichotomy_common::Encode for WorkloadSpec {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            WorkloadSpec::Ycsb(c) => {
                out.push(0);
                c.encode_into(out);
            }
            WorkloadSpec::Smallbank(c) => {
                out.push(1);
                c.encode_into(out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::ClientId;

    #[test]
    fn specs_build_the_named_workload() {
        let ycsb = WorkloadSpec::ycsb(YcsbMix::QueryOnly);
        assert_eq!(ycsb.name(), "YCSB");
        assert_eq!(ycsb.build().name(), "YCSB");
        let sb = WorkloadSpec::smallbank();
        assert_eq!(sb.name(), "Smallbank");
        assert_eq!(sb.build().name(), "Smallbank");
    }

    #[test]
    fn knob_setters_reach_the_underlying_config() {
        let spec = WorkloadSpec::ycsb(YcsbMix::UpdateOnly)
            .with_records(123)
            .with_record_size(77)
            .with_theta(0.5)
            .with_ops_per_txn(3)
            .with_seed(9);
        match &spec {
            WorkloadSpec::Ycsb(c) => {
                assert_eq!(c.record_count, 123);
                assert_eq!(c.record_size, 77);
                assert_eq!(c.zipf_theta, 0.5);
                assert_eq!(c.ops_per_txn, 3);
                assert_eq!(c.seed, 9);
            }
            _ => panic!("expected YCSB"),
        }
        assert_eq!(spec.seed(), 9);
        assert_eq!(spec.build().initial_records().len(), 123);
    }

    #[test]
    fn builds_are_independent_and_seed_deterministic() {
        let spec = WorkloadSpec::ycsb(YcsbMix::UpdateOnly)
            .with_records(500)
            .with_theta(0.9)
            .with_seed(42);
        let mut a = spec.build();
        let mut b = spec.build();
        for seq in 0..50 {
            let ta = a.next_transaction(ClientId(1), seq);
            let tb = b.next_transaction(ClientId(1), seq);
            assert_eq!(ta.ops[0].key, tb.ops[0].key);
        }
        let mut c = spec.clone().with_seed(43).build();
        let keys_differ = (0..50).any(|seq| {
            let tc = c.next_transaction(ClientId(2), seq);
            let ta = spec.build().next_transaction(ClientId(2), seq);
            tc.ops[0].key != ta.ops[0].key
        });
        assert!(keys_differ, "different seeds should pick different keys");
    }
}
