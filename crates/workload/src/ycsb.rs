//! The YCSB core workload with the knobs of Table 3.

use dichotomy_common::rng::{self, Rng, StdRng};
use dichotomy_common::{ClientId, Encode, Key, KeyPair, Operation, Transaction, TxnId, Value};

use crate::zipf::ZipfianGenerator;
use crate::Workload;

/// Read/write mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum YcsbMix {
    /// 100 % writes (the paper's "update" workload).
    UpdateOnly,
    /// 100 % reads (the paper's "query" workload).
    QueryOnly,
    /// Each transaction reads the key, then writes it back (the skew
    /// experiments' "modify" transaction).
    ReadModifyWrite,
    /// A fraction of operations are reads, the rest writes.
    Mixed {
        /// Probability that an operation is a read.
        read_fraction: f64,
    },
}

/// Workload configuration (defaults = the paper's defaults, Table 3).
#[derive(Debug, Clone)]
pub struct YcsbConfig {
    /// Number of pre-loaded records (paper: 100 K for YCSB peak throughput).
    pub record_count: u64,
    /// Record (value) size in bytes; Table 3 default 1 000.
    pub record_size: usize,
    /// Zipfian coefficient θ; Table 3 default 0 (uniform).
    pub zipf_theta: f64,
    /// Operations per transaction; Table 3 default 1.
    pub ops_per_txn: usize,
    /// Read/write mix.
    pub mix: YcsbMix,
    /// Whether transactions carry client signatures (blockchains need them;
    /// databases do not).
    pub sign_transactions: bool,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            record_count: 100_000,
            record_size: 1_000,
            zipf_theta: 0.0,
            ops_per_txn: 1,
            mix: YcsbMix::UpdateOnly,
            sign_transactions: true,
            seed: dichotomy_common::rng::DEFAULT_SEED,
        }
    }
}

impl Encode for YcsbMix {
    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            YcsbMix::UpdateOnly => out.push(0),
            YcsbMix::QueryOnly => out.push(1),
            YcsbMix::ReadModifyWrite => out.push(2),
            YcsbMix::Mixed { read_fraction } => {
                out.push(3);
                read_fraction.encode_into(out);
            }
        }
    }
}

impl Encode for YcsbConfig {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.record_count.encode_into(out);
        (self.record_size as u64).encode_into(out);
        self.zipf_theta.encode_into(out);
        (self.ops_per_txn as u64).encode_into(out);
        self.mix.encode_into(out);
        self.sign_transactions.encode_into(out);
        self.seed.encode_into(out);
    }
}

impl YcsbConfig {
    /// The paper's uniform update-only peak-throughput configuration.
    pub fn update_default() -> Self {
        YcsbConfig::default()
    }

    /// The paper's uniform query-only configuration.
    pub fn query_default() -> Self {
        YcsbConfig {
            mix: YcsbMix::QueryOnly,
            ..YcsbConfig::default()
        }
    }

    /// The skew-sweep configuration of Figure 9: single-record
    /// read-modify-write transactions at the given θ.
    pub fn skewed_modify(theta: f64) -> Self {
        YcsbConfig {
            zipf_theta: theta,
            mix: YcsbMix::ReadModifyWrite,
            ..YcsbConfig::default()
        }
    }

    /// The operation-count sweep of Figure 10: `ops` operations per
    /// transaction with the total transaction payload held at 1 000 bytes.
    pub fn op_count_sweep(ops: usize) -> Self {
        let ops = ops.max(1);
        YcsbConfig {
            ops_per_txn: ops,
            record_size: 1_000 / ops,
            mix: YcsbMix::ReadModifyWrite,
            ..YcsbConfig::default()
        }
    }

    /// The record-size sweep of Figure 11.
    pub fn record_size_sweep(record_size: usize) -> Self {
        YcsbConfig {
            record_size,
            ..YcsbConfig::default()
        }
    }
}

/// The YCSB workload generator.
pub struct YcsbWorkload {
    config: YcsbConfig,
    zipf: ZipfianGenerator,
    rng: StdRng,
}

impl YcsbWorkload {
    /// Build a workload from its configuration.
    pub fn new(config: YcsbConfig) -> Self {
        let zipf = ZipfianGenerator::new(config.record_count, config.zipf_theta, config.seed);
        let rng = rng::seeded(rng::derive_seed(config.seed, "ycsb"));
        YcsbWorkload { config, zipf, rng }
    }

    /// The configuration in use.
    pub fn config(&self) -> &YcsbConfig {
        &self.config
    }

    /// The YCSB-style key for a record index.
    pub fn key_for(index: u64) -> Key {
        Key::from_str(&format!("user{index:012}"))
    }

    fn next_key(&mut self) -> Key {
        Self::key_for(self.zipf.next())
    }

    fn next_value(&mut self) -> Value {
        Value::filler(self.config.record_size.max(1))
    }
}

impl Workload for YcsbWorkload {
    fn initial_records(&self) -> Vec<(Key, Value)> {
        (0..self.config.record_count)
            .map(|i| {
                (
                    Self::key_for(i),
                    Value::filler(self.config.record_size.max(1)),
                )
            })
            .collect()
    }

    fn next_transaction(&mut self, client: ClientId, seq: u64) -> Transaction {
        let mut ops = Vec::with_capacity(self.config.ops_per_txn);
        let mut used = std::collections::BTreeSet::new();
        while ops.len() < self.config.ops_per_txn {
            let key = self.next_key();
            // YCSB transactions touch distinct keys.
            if !used.insert(key.clone()) {
                continue;
            }
            let op = match self.config.mix {
                YcsbMix::UpdateOnly => Operation::write(key, self.next_value()),
                YcsbMix::QueryOnly => Operation::read(key),
                YcsbMix::ReadModifyWrite => Operation::read_modify_write(key, self.next_value()),
                YcsbMix::Mixed { read_fraction } => {
                    if self.rng.gen_bool(read_fraction.clamp(0.0, 1.0)) {
                        Operation::read(key)
                    } else {
                        Operation::write(key, self.next_value())
                    }
                }
            };
            ops.push(op);
        }
        let id = TxnId::new(client, seq);
        if self.config.sign_transactions {
            Transaction::signed(id, ops, 0, &KeyPair::for_client(client.0))
        } else {
            Transaction::new(id, ops)
        }
    }

    fn name(&self) -> &'static str {
        "YCSB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_records_match_config() {
        let w = YcsbWorkload::new(YcsbConfig {
            record_count: 100,
            record_size: 64,
            ..YcsbConfig::default()
        });
        let records = w.initial_records();
        assert_eq!(records.len(), 100);
        assert!(records.iter().all(|(_, v)| v.len() == 64));
        assert_eq!(records[5].0, YcsbWorkload::key_for(5));
    }

    #[test]
    fn update_only_transactions_are_writes_of_the_right_size() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            record_count: 1000,
            record_size: 100,
            ..YcsbConfig::default()
        });
        let t = w.next_transaction(ClientId(1), 1);
        assert_eq!(t.op_count(), 1);
        assert!(t.ops[0].writes() && !t.ops[0].reads());
        assert_eq!(t.ops[0].value.as_ref().unwrap().len(), 100);
        assert!(t.verify_signature());
    }

    #[test]
    fn query_only_transactions_are_read_only() {
        let mut w = YcsbWorkload::new(YcsbConfig::query_default());
        let t = w.next_transaction(ClientId(2), 1);
        assert!(t.is_read_only());
    }

    #[test]
    fn op_count_sweep_holds_total_payload_constant() {
        for ops in [1usize, 2, 4, 10] {
            let mut w = YcsbWorkload::new(YcsbConfig {
                record_count: 10_000,
                ..YcsbConfig::op_count_sweep(ops)
            });
            let t = w.next_transaction(ClientId(1), 1);
            assert_eq!(t.op_count(), ops);
            let value_bytes: usize = t.ops.iter().map(|o| o.value.as_ref().unwrap().len()).sum();
            assert_eq!(value_bytes, (1000 / ops) * ops);
        }
    }

    #[test]
    fn transactions_touch_distinct_keys() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            record_count: 50,
            ops_per_txn: 10,
            zipf_theta: 0.99,
            mix: YcsbMix::ReadModifyWrite,
            ..YcsbConfig::default()
        });
        for seq in 0..20 {
            let t = w.next_transaction(ClientId(1), seq);
            let mut keys: Vec<_> = t.ops.iter().map(|o| o.key.clone()).collect();
            keys.sort();
            keys.dedup();
            assert_eq!(keys.len(), 10);
        }
    }

    #[test]
    fn skewed_workload_repeats_hot_keys_across_transactions() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            record_count: 10_000,
            ..YcsbConfig::skewed_modify(0.99)
        });
        let mut counts = std::collections::HashMap::new();
        for seq in 0..2000 {
            let t = w.next_transaction(ClientId(1), seq);
            *counts.entry(t.ops[0].key.clone()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap_or(0);
        assert!(max > 50, "hottest key hit {max} times");
    }

    #[test]
    fn mixed_workload_contains_both_reads_and_writes() {
        let mut w = YcsbWorkload::new(YcsbConfig {
            record_count: 1000,
            ops_per_txn: 4,
            mix: YcsbMix::Mixed { read_fraction: 0.5 },
            sign_transactions: false,
            ..YcsbConfig::default()
        });
        let mut reads = 0;
        let mut writes = 0;
        for seq in 0..100 {
            let t = w.next_transaction(ClientId(1), seq);
            assert!(t.signature.is_none());
            for op in &t.ops {
                if op.writes() {
                    writes += 1;
                } else {
                    reads += 1;
                }
            }
        }
        assert!(reads > 50 && writes > 50);
    }
}
