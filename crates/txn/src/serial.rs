//! Serial (ledger-order) execution.
//!
//! The executor applies transactions one at a time against the MVCC store:
//! no aborts from concurrency are possible, which is exactly why etcd's and
//! Quorum's throughput is flat across the skew sweep of Figure 9a.

use dichotomy_common::{Key, Transaction, Value, Version};
use dichotomy_storage::MvccStore;

use crate::effective_writes;

/// The serial executor.
#[derive(Debug, Default)]
pub struct SerialExecutor {
    executed: u64,
}

/// Outcome of a serially executed transaction (always commits).
#[derive(Debug, Clone)]
pub struct SerialOutcome {
    /// Values read, in operation order.
    pub reads: Vec<(Key, Option<Value>)>,
    /// Commit version assigned.
    pub version: Version,
    /// Number of keys written.
    pub writes: usize,
}

impl SerialExecutor {
    /// A fresh executor.
    pub fn new() -> Self {
        SerialExecutor::default()
    }

    /// Number of transactions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Execute `txn` against `store`: read the latest versions, apply all
    /// writes under a fresh commit version.
    pub fn execute(&mut self, txn: &Transaction, store: &mut MvccStore) -> SerialOutcome {
        let reads: Vec<(Key, Option<Value>)> = txn
            .ops
            .iter()
            .filter(|op| op.reads())
            .map(|op| (op.key.clone(), store.get_latest(&op.key)))
            .collect();
        let version = store.begin_commit();
        let writes = effective_writes(txn, &reads);
        let write_count = writes.len();
        for (key, value) in writes {
            store.commit_write(key, version, Some(value));
        }
        self.executed += 1;
        SerialOutcome {
            reads,
            version,
            writes: write_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn txn(seq: u64, ops: Vec<Operation>) -> Transaction {
        Transaction::new(TxnId::new(ClientId(1), seq), ops)
    }

    #[test]
    fn writes_become_visible_to_later_transactions() {
        let mut store = MvccStore::new();
        let mut exec = SerialExecutor::new();
        let k = Key::from_str("a");
        exec.execute(
            &txn(1, vec![Operation::write(k.clone(), Value::filler(5))]),
            &mut store,
        );
        let out = exec.execute(&txn(2, vec![Operation::read(k.clone())]), &mut store);
        assert_eq!(out.reads[0].1.as_ref().unwrap().len(), 5);
        assert_eq!(exec.executed(), 2);
    }

    #[test]
    fn read_modify_write_reads_then_writes() {
        let mut store = MvccStore::new();
        let mut exec = SerialExecutor::new();
        let k = Key::from_str("counter");
        exec.execute(
            &txn(1, vec![Operation::write(k.clone(), Value::filler(1))]),
            &mut store,
        );
        let out = exec.execute(
            &txn(
                2,
                vec![Operation::read_modify_write(k.clone(), Value::filler(2))],
            ),
            &mut store,
        );
        assert_eq!(out.reads.len(), 1);
        assert_eq!(out.writes, 1);
        assert_eq!(store.get_latest(&k).unwrap().len(), 2);
    }

    #[test]
    fn versions_increase_monotonically() {
        let mut store = MvccStore::new();
        let mut exec = SerialExecutor::new();
        let k = Key::from_str("a");
        let v1 = exec
            .execute(
                &txn(1, vec![Operation::write(k.clone(), Value::filler(1))]),
                &mut store,
            )
            .version;
        let v2 = exec
            .execute(
                &txn(2, vec![Operation::write(k, Value::filler(1))]),
                &mut store,
            )
            .version;
        assert!(v2 > v1);
    }

    #[test]
    fn read_of_missing_key_is_none() {
        let mut store = MvccStore::new();
        let mut exec = SerialExecutor::new();
        let out = exec.execute(
            &txn(1, vec![Operation::read(Key::from_str("nope"))]),
            &mut store,
        );
        assert_eq!(out.reads[0].1, None);
        assert_eq!(out.writes, 0);
    }
}
