//! Pessimistic two-phase locking with wound-wait deadlock avoidance, the
//! scheme the Spanner model uses in the Figure 14 comparison.
//!
//! Shared (read) and exclusive (write) locks are acquired before access and
//! held to commit. Conflicts are resolved by **wound-wait**: an older
//! transaction (smaller timestamp) *wounds* (aborts) a younger lock holder,
//! while a younger requester waits for an older holder. The waiting — as
//! opposed to TiDB's immediate abort — is what makes the Spanner model fall
//! behind TiDB under skew in Figure 14.

use std::collections::{BTreeMap, BTreeSet};

use dichotomy_common::{AbortReason, Key, TxnId, Version};

/// Lock modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared lock (reads).
    Shared,
    /// Exclusive lock (writes).
    Exclusive,
}

/// State of one key's lock.
#[derive(Debug, Default, Clone)]
struct LockState {
    /// Holders of shared locks.
    shared: BTreeSet<TxnId>,
    /// Holder of the exclusive lock, if any.
    exclusive: Option<TxnId>,
}

/// Outcome of a lock request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted.
    Granted,
    /// The requester must wait for the listed older transactions.
    Wait(Vec<TxnId>),
    /// The listed younger holders were wounded (aborted) and the lock granted
    /// to the requester; the caller must roll the victims back.
    Wounded(Vec<TxnId>),
}

/// The lock manager. Transaction age is given by a start timestamp supplied
/// at first contact (smaller = older = higher priority under wound-wait).
#[derive(Debug, Default)]
pub struct LockManager {
    locks: BTreeMap<Key, LockState>,
    start_ts: BTreeMap<TxnId, Version>,
    wounded: BTreeSet<TxnId>,
}

impl LockManager {
    /// A fresh lock manager.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Register a transaction with its start timestamp (its wound-wait age).
    pub fn register(&mut self, txn: TxnId, start_ts: Version) {
        self.start_ts.entry(txn).or_insert(start_ts);
    }

    /// Whether `txn` has been wounded and must abort.
    pub fn is_wounded(&self, txn: TxnId) -> bool {
        self.wounded.contains(&txn)
    }

    fn age(&self, txn: TxnId) -> Version {
        *self.start_ts.get(&txn).unwrap_or(&Version::MAX)
    }

    /// Request `mode` on `key` for `txn`.
    pub fn acquire(&mut self, txn: TxnId, key: &Key, mode: LockMode) -> LockOutcome {
        if self.is_wounded(txn) {
            return LockOutcome::Wait(Vec::new());
        }
        let state = self.locks.entry(key.clone()).or_default();
        // Identify conflicting holders.
        let mut conflicts: Vec<TxnId> = Vec::new();
        match mode {
            LockMode::Shared => {
                if let Some(x) = state.exclusive {
                    if x != txn {
                        conflicts.push(x);
                    }
                }
            }
            LockMode::Exclusive => {
                if let Some(x) = state.exclusive {
                    if x != txn {
                        conflicts.push(x);
                    }
                }
                conflicts.extend(state.shared.iter().copied().filter(|&t| t != txn));
            }
        }
        if conflicts.is_empty() {
            match mode {
                LockMode::Shared => {
                    state.shared.insert(txn);
                }
                LockMode::Exclusive => {
                    state.exclusive = Some(txn);
                    state.shared.remove(&txn);
                }
            }
            return LockOutcome::Granted;
        }
        let my_age = self.age(txn);
        let younger: Vec<TxnId> = conflicts
            .iter()
            .copied()
            .filter(|&other| self.age(other) > my_age)
            .collect();
        if younger.len() == conflicts.len() {
            // Wound every younger holder and take the lock.
            for victim in &younger {
                self.wounded.insert(*victim);
                self.release_all(*victim);
            }
            let state = self.locks.entry(key.clone()).or_default();
            match mode {
                LockMode::Shared => {
                    state.shared.insert(txn);
                }
                LockMode::Exclusive => {
                    state.exclusive = Some(txn);
                }
            }
            LockOutcome::Wounded(younger)
        } else {
            // At least one older holder: wait for the older ones.
            let older: Vec<TxnId> = conflicts
                .into_iter()
                .filter(|&other| self.age(other) <= my_age)
                .collect();
            LockOutcome::Wait(older)
        }
    }

    /// Release every lock `txn` holds (commit or abort).
    pub fn release_all(&mut self, txn: TxnId) {
        for state in self.locks.values_mut() {
            state.shared.remove(&txn);
            if state.exclusive == Some(txn) {
                state.exclusive = None;
            }
        }
        self.locks
            .retain(|_, s| s.exclusive.is_some() || !s.shared.is_empty());
    }

    /// Finish a transaction: release its locks and clear bookkeeping. Returns
    /// `Err` if it was wounded (it must report an abort to its client).
    pub fn finish(&mut self, txn: TxnId) -> Result<(), AbortReason> {
        self.release_all(txn);
        self.start_ts.remove(&txn);
        if self.wounded.remove(&txn) {
            Err(AbortReason::LockConflict)
        } else {
            Ok(())
        }
    }

    /// Number of keys currently locked.
    pub fn locked_keys(&self) -> usize {
        self.locks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::ClientId;

    fn t(n: u64) -> TxnId {
        TxnId::new(ClientId(n), 1)
    }

    fn k(s: &str) -> Key {
        Key::from_str(s)
    }

    #[test]
    fn shared_locks_are_compatible() {
        let mut lm = LockManager::new();
        lm.register(t(1), 10);
        lm.register(t(2), 20);
        assert_eq!(
            lm.acquire(t(1), &k("a"), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(2), &k("a"), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(lm.locked_keys(), 1);
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        let mut lm = LockManager::new();
        lm.register(t(1), 10);
        lm.register(t(2), 20);
        assert_eq!(
            lm.acquire(t(1), &k("a"), LockMode::Exclusive),
            LockOutcome::Granted
        );
        // Younger writer waits for the older holder.
        assert_eq!(
            lm.acquire(t(2), &k("a"), LockMode::Exclusive),
            LockOutcome::Wait(vec![t(1)])
        );
        // Release lets it in.
        lm.release_all(t(1));
        assert_eq!(
            lm.acquire(t(2), &k("a"), LockMode::Exclusive),
            LockOutcome::Granted
        );
    }

    #[test]
    fn older_transaction_wounds_younger_holder() {
        let mut lm = LockManager::new();
        lm.register(t(1), 10); // older
        lm.register(t(2), 20); // younger
        assert_eq!(
            lm.acquire(t(2), &k("a"), LockMode::Exclusive),
            LockOutcome::Granted
        );
        match lm.acquire(t(1), &k("a"), LockMode::Exclusive) {
            LockOutcome::Wounded(victims) => assert_eq!(victims, vec![t(2)]),
            other => panic!("expected wound, got {other:?}"),
        }
        assert!(lm.is_wounded(t(2)));
        assert_eq!(lm.finish(t(2)), Err(AbortReason::LockConflict));
        assert_eq!(lm.finish(t(1)), Ok(()));
    }

    #[test]
    fn wound_wait_prevents_deadlock_cycles() {
        // T1 (older) holds a, wants b; T2 (younger) holds b, wants a.
        let mut lm = LockManager::new();
        lm.register(t(1), 10);
        lm.register(t(2), 20);
        assert_eq!(
            lm.acquire(t(1), &k("a"), LockMode::Exclusive),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(2), &k("b"), LockMode::Exclusive),
            LockOutcome::Granted
        );
        // T2 wants a: must wait (holder is older).
        assert_eq!(
            lm.acquire(t(2), &k("a"), LockMode::Exclusive),
            LockOutcome::Wait(vec![t(1)])
        );
        // T1 wants b: wounds T2, no cycle possible.
        match lm.acquire(t(1), &k("b"), LockMode::Exclusive) {
            LockOutcome::Wounded(v) => assert_eq!(v, vec![t(2)]),
            other => panic!("expected wound, got {other:?}"),
        }
    }

    #[test]
    fn shared_to_exclusive_upgrade_by_same_txn() {
        let mut lm = LockManager::new();
        lm.register(t(1), 10);
        assert_eq!(
            lm.acquire(t(1), &k("a"), LockMode::Shared),
            LockOutcome::Granted
        );
        assert_eq!(
            lm.acquire(t(1), &k("a"), LockMode::Exclusive),
            LockOutcome::Granted
        );
    }

    #[test]
    fn finish_releases_everything() {
        let mut lm = LockManager::new();
        lm.register(t(1), 10);
        for key in ["a", "b", "c"] {
            lm.acquire(t(1), &k(key), LockMode::Exclusive);
        }
        assert_eq!(lm.locked_keys(), 3);
        assert_eq!(lm.finish(t(1)), Ok(()));
        assert_eq!(lm.locked_keys(), 0);
    }
}
