//! Concurrency control (the concurrency dimension, Section 3.2).
//!
//! Four schemes cover the benchmarked systems:
//!
//! * [`serial::SerialExecutor`] — one transaction at a time in ledger order
//!   (Quorum, etcd, and every order-execute blockchain).
//! * [`occ`] — Fabric's execute-order-validate optimism: transactions are
//!   *simulated* against a snapshot, collecting a versioned read set; at
//!   commit the read versions are re-checked and stale reads abort
//!   (`ReadWriteConflict`), which is what drives the abort curves of
//!   Figures 9b and 10b.
//! * [`percolator`] — TiDB's Percolator-style scheme: snapshot reads, a
//!   primary lock per transaction, prewrite that detects write-write
//!   conflicts, then commit; under skew the primary-lock contention is what
//!   collapses TiDB's throughput in Figure 9a.
//! * [`locking`] — Spanner-style pessimistic two-phase locking with
//!   wound-wait deadlock avoidance, used by the Spanner model in Figure 14.
//!
//! All schemes execute against the shared [`MvccStore`](dichotomy_storage::MvccStore)
//! so their effects are directly comparable.

pub mod locking;
pub mod occ;
pub mod percolator;
pub mod serial;

pub use locking::LockManager;
pub use occ::{OccExecutor, SimulationResult};
pub use percolator::{PercolatorExecutor, PercolatorOutcome};
pub use serial::SerialExecutor;

use dichotomy_common::{Key, Value};

/// Applies the write of a read-modify-write operation: the new value is a
/// function of the old one (here: the provided payload, which preserves the
/// size semantics the workloads care about).
pub(crate) fn rmw_value(_old: Option<&Value>, new: &Value) -> Value {
    new.clone()
}

/// Extract the (key, value) pairs a transaction writes, applying
/// read-modify-write semantics against the provided read results.
pub(crate) fn effective_writes(
    txn: &dichotomy_common::Transaction,
    reads: &[(Key, Option<Value>)],
) -> Vec<(Key, Value)> {
    txn.ops
        .iter()
        .filter(|op| op.writes())
        .map(|op| {
            let old = reads
                .iter()
                .find(|(k, _)| k == &op.key)
                .and_then(|(_, v)| v.as_ref());
            let new = op.value.clone().unwrap_or_else(|| Value::new(Vec::new()));
            (op.key.clone(), rmw_value(old, &new))
        })
        .collect()
}
