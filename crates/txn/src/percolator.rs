//! Percolator-style transactions, the scheme TiDB layers over TiKV.
//!
//! A transaction reads at a start-timestamp snapshot, then commits in two
//! phases: **prewrite** locks every written key (choosing one *primary* lock
//! whose fate decides the whole transaction) and fails on write-write
//! conflicts — either a newer committed version than the snapshot or a lock
//! held by another transaction — and **commit** publishes the writes at a
//! commit timestamp and releases the locks.
//!
//! Two behaviours matter for the paper's figures:
//!
//! * write-write conflict aborts grow with skew and with the number of keys
//!   touched (Figures 9b, 10b), and
//! * under high contention the coordinator spends its time on lock conflicts
//!   and retries on the primary key rather than on useful work, which is the
//!   mechanism behind TiDB's 90 % throughput collapse at θ = 1 even though
//!   only 30 % of transactions abort (Section 5.3.1). The executor therefore
//!   reports, per transaction, how many lock-conflict rounds it went through.

use std::collections::BTreeMap;

use dichotomy_common::{AbortReason, Key, Transaction, TxnId, Value, Version};
use dichotomy_storage::MvccStore;

use crate::effective_writes;

/// An in-flight lock.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Lock {
    owner: TxnId,
    /// The transaction's primary key (lock resolution chases this).
    primary: Key,
    start_ts: Version,
}

/// Outcome of a successful commit.
#[derive(Debug, Clone)]
pub struct PercolatorOutcome {
    /// Snapshot the transaction read at.
    pub start_ts: Version,
    /// Commit timestamp.
    pub commit_ts: Version,
    /// Values read.
    pub reads: Vec<(Key, Option<Value>)>,
    /// How many prewrite attempts hit a lock conflict before succeeding or
    /// giving up (each costs the coordinator a round of conflict resolution).
    pub lock_conflict_rounds: u32,
}

/// The Percolator executor: the lock table is shared state of the storage
/// layer (TiKV's lock column family).
#[derive(Debug, Default)]
pub struct PercolatorExecutor {
    locks: BTreeMap<Key, Lock>,
    committed: u64,
    aborted: u64,
}

impl PercolatorExecutor {
    /// A fresh executor with an empty lock table.
    pub fn new() -> Self {
        PercolatorExecutor::default()
    }

    /// Transactions committed.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Transactions aborted.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Locks currently held (for tests and saturation accounting).
    pub fn locks_held(&self) -> usize {
        self.locks.len()
    }

    /// Execute a full transaction: snapshot read, prewrite, commit. Aborts
    /// with `WriteWriteConflict` when a written key has a committed version
    /// newer than the snapshot, and with `LockConflict` when another
    /// transaction holds a lock on a written key (after `max_lock_retries`
    /// rounds of waiting for it to clear).
    pub fn execute(
        &mut self,
        txn: &Transaction,
        store: &mut MvccStore,
        max_lock_retries: u32,
    ) -> Result<PercolatorOutcome, (AbortReason, u32)> {
        let start_ts = store.latest_version();
        // Snapshot reads.
        let reads: Vec<(Key, Option<Value>)> = txn
            .ops
            .iter()
            .filter(|op| op.reads())
            .map(|op| (op.key.clone(), store.get_at(&op.key, start_ts)))
            .collect();
        let writes = effective_writes(txn, &reads);
        if writes.is_empty() {
            // Read-only transactions commit trivially at the snapshot.
            self.committed += 1;
            return Ok(PercolatorOutcome {
                start_ts,
                commit_ts: start_ts,
                reads,
                lock_conflict_rounds: 0,
            });
        }
        let primary = writes[0].0.clone();

        // Prewrite with bounded lock-conflict retries.
        let mut conflict_rounds = 0u32;
        loop {
            match self.try_prewrite(txn.id, &primary, &writes, start_ts, store) {
                Ok(()) => break,
                Err(AbortReason::LockConflict) if conflict_rounds < max_lock_retries => {
                    conflict_rounds += 1;
                    // In a real system the coordinator would wait and resolve
                    // the blocking lock; in this deterministic model the
                    // blocking transaction has either committed (releasing
                    // the lock) by the next attempt or we eventually abort.
                    continue;
                }
                Err(reason) => {
                    self.aborted += 1;
                    return Err((reason, conflict_rounds));
                }
            }
        }

        // Commit: publish writes and release locks.
        let commit_ts = store.begin_commit();
        for (key, value) in &writes {
            store.commit_write(key.clone(), commit_ts, Some(value.clone()));
            self.locks.remove(key);
        }
        self.committed += 1;
        Ok(PercolatorOutcome {
            start_ts,
            commit_ts,
            reads,
            lock_conflict_rounds: conflict_rounds,
        })
    }

    fn try_prewrite(
        &mut self,
        id: TxnId,
        primary: &Key,
        writes: &[(Key, Value)],
        start_ts: Version,
        store: &MvccStore,
    ) -> Result<(), AbortReason> {
        // Check conflicts on every written key first (no partial locking).
        for (key, _) in writes {
            if let Some(lock) = self.locks.get(key) {
                if lock.owner != id {
                    return Err(AbortReason::LockConflict);
                }
            }
            if store.latest_key_version(key).unwrap_or(0) > start_ts {
                return Err(AbortReason::WriteWriteConflict);
            }
        }
        // Acquire all locks.
        for (key, _) in writes {
            self.locks.insert(
                key.clone(),
                Lock {
                    owner: id,
                    primary: primary.clone(),
                    start_ts,
                },
            );
        }
        Ok(())
    }

    /// Abort an in-flight transaction (release its locks without writing).
    /// Used by the system models when a 2PC participant votes no.
    pub fn release_locks(&mut self, id: TxnId) {
        self.locks.retain(|_, lock| lock.owner != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, Operation};

    fn txn(client: u64, seq: u64, keys: &[&str]) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(client), seq),
            keys.iter()
                .map(|k| Operation::read_modify_write(Key::from_str(k), Value::filler(8)))
                .collect(),
        )
    }

    fn seed(store: &mut MvccStore, keys: &[&str]) {
        let v = store.begin_commit();
        for k in keys {
            store.commit_write(Key::from_str(k), v, Some(Value::filler(4)));
        }
    }

    #[test]
    fn sequential_transactions_commit() {
        let mut store = MvccStore::new();
        seed(&mut store, &["a", "b"]);
        let mut exec = PercolatorExecutor::new();
        for seq in 1..=5 {
            let out = exec
                .execute(&txn(1, seq, &["a", "b"]), &mut store, 3)
                .unwrap();
            assert!(out.commit_ts > out.start_ts);
            assert_eq!(out.lock_conflict_rounds, 0);
        }
        assert_eq!(exec.committed(), 5);
        assert_eq!(exec.locks_held(), 0);
    }

    #[test]
    fn write_write_conflict_when_snapshot_is_stale() {
        let mut store = MvccStore::new();
        seed(&mut store, &["hot"]);
        let mut exec = PercolatorExecutor::new();
        // Take a snapshot, then someone else commits a newer version.
        let t = txn(1, 1, &["hot"]);
        let start_ts = store.latest_version();
        let v = store.begin_commit();
        store.commit_write(Key::from_str("hot"), v, Some(Value::filler(9)));
        assert!(store.latest_version() > start_ts);
        // Re-running execute takes a fresh snapshot, so emulate the stale one
        // by interleaving: first prewrite manually via execute on a store
        // whose latest moved after the snapshot was taken inside execute.
        // Simplest deterministic check: two transactions writing the same key
        // where the first commits between the second's snapshot and prewrite
        // cannot happen in this single-threaded API, so assert the direct
        // conflict path instead.
        let writes = vec![(Key::from_str("hot"), Value::filler(8))];
        let err = exec
            .try_prewrite(t.id, &Key::from_str("hot"), &writes, start_ts, &store)
            .unwrap_err();
        assert_eq!(err, AbortReason::WriteWriteConflict);
    }

    #[test]
    fn lock_conflict_aborts_after_retries() {
        let mut store = MvccStore::new();
        seed(&mut store, &["hot"]);
        let mut exec = PercolatorExecutor::new();
        // Transaction A prewrites but never commits (simulating a stalled
        // coordinator holding the primary lock).
        let a = txn(1, 1, &["hot"]);
        let writes = vec![(Key::from_str("hot"), Value::filler(8))];
        exec.try_prewrite(
            a.id,
            &Key::from_str("hot"),
            &writes,
            store.latest_version(),
            &store,
        )
        .unwrap();
        assert_eq!(exec.locks_held(), 1);
        // Transaction B now conflicts on the lock and eventually aborts.
        let b = txn(2, 1, &["hot"]);
        let (reason, rounds) = exec.execute(&b, &mut store, 3).unwrap_err();
        assert_eq!(reason, AbortReason::LockConflict);
        assert_eq!(rounds, 3);
        assert_eq!(exec.aborted(), 1);
        // Once A's locks are resolved, B retries successfully.
        exec.release_locks(a.id);
        assert!(exec.execute(&b, &mut store, 3).is_ok());
    }

    #[test]
    fn read_only_transactions_never_conflict() {
        let mut store = MvccStore::new();
        seed(&mut store, &["r"]);
        let mut exec = PercolatorExecutor::new();
        let read = Transaction::new(
            TxnId::new(ClientId(3), 1),
            vec![Operation::read(Key::from_str("r"))],
        );
        let out = exec.execute(&read, &mut store, 3).unwrap();
        assert_eq!(out.start_ts, out.commit_ts);
        assert_eq!(out.reads[0].1.as_ref().unwrap().len(), 4);
    }

    #[test]
    fn snapshot_reads_ignore_later_writes() {
        let mut store = MvccStore::new();
        seed(&mut store, &["k"]);
        // The snapshot is taken inside execute; a later write (applied by the
        // same executor) must not be visible to an earlier snapshot read.
        let mut exec = PercolatorExecutor::new();
        let w = txn(1, 1, &["k"]);
        exec.execute(&w, &mut store, 3).unwrap();
        let r = Transaction::new(
            TxnId::new(ClientId(2), 1),
            vec![Operation::read(Key::from_str("k"))],
        );
        let out = exec.execute(&r, &mut store, 3).unwrap();
        assert_eq!(out.reads[0].1.as_ref().unwrap().len(), 8);
    }

    #[test]
    fn multi_key_transactions_lock_all_or_nothing() {
        let mut store = MvccStore::new();
        seed(&mut store, &["a", "b", "c"]);
        let mut exec = PercolatorExecutor::new();
        // Hold a lock on "b".
        let blocker = txn(9, 1, &["b"]);
        exec.try_prewrite(
            blocker.id,
            &Key::from_str("b"),
            &[(Key::from_str("b"), Value::filler(8))],
            store.latest_version(),
            &store,
        )
        .unwrap();
        // A transaction touching a, b, c must not leave partial locks behind.
        let t = txn(1, 1, &["a", "b", "c"]);
        assert!(exec.execute(&t, &mut store, 1).is_err());
        assert_eq!(exec.locks_held(), 1, "only the blocker's lock remains");
    }
}
