//! Fabric-style optimistic concurrency control (execute-order-validate).
//!
//! The lifecycle mirrors Section 5.3.1's description:
//!
//! 1. **Simulate**: the transaction executes against the current committed
//!    state, producing a versioned read set and a write set. In Fabric this
//!    happens on the endorsing peers before ordering.
//! 2. **Order**: (outside this module) the batch gets a position in the
//!    ledger.
//! 3. **Validate & commit**: in ledger order, each transaction's read set is
//!    checked against the *now*-current versions; if any read key has been
//!    overwritten since simulation, the transaction is marked invalid
//!    (`ReadWriteConflict`) and its writes are discarded.
//!
//! The module also models the **inconsistent read** abort of Figure 10b: when
//! several endorsers simulate against different snapshots, the client detects
//! mismatching results and gives up before ordering.

use dichotomy_common::{AbortReason, Key, Transaction, Value, Version};
use dichotomy_storage::MvccStore;

use crate::effective_writes;

/// The result of simulating a transaction against a snapshot.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// (key, version read) pairs; version 0 means "key did not exist".
    pub read_set: Vec<(Key, Version)>,
    /// Values read (returned to the client / used by RMW logic).
    pub reads: Vec<(Key, Option<Value>)>,
    /// (key, value) pairs to write if the transaction commits.
    pub write_set: Vec<(Key, Value)>,
    /// Snapshot version the simulation ran against.
    pub snapshot: Version,
}

/// The OCC executor: stateless apart from statistics.
#[derive(Debug, Default)]
pub struct OccExecutor {
    committed: u64,
    aborted: u64,
}

impl OccExecutor {
    /// A fresh executor.
    pub fn new() -> Self {
        OccExecutor::default()
    }

    /// Transactions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Transactions aborted so far.
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Phase 1: simulate `txn` against the latest committed state of `store`.
    pub fn simulate(&self, txn: &Transaction, store: &MvccStore) -> SimulationResult {
        let snapshot = store.latest_version();
        let mut read_set = Vec::new();
        let mut reads = Vec::new();
        for op in txn.ops.iter().filter(|op| op.reads()) {
            let version = store.latest_key_version(&op.key).unwrap_or(0);
            read_set.push((op.key.clone(), version));
            reads.push((op.key.clone(), store.get_latest(&op.key)));
        }
        // Blind writes still record the key's current version in the read set
        // (Fabric includes written keys' versions for phantom protection).
        for op in txn.ops.iter().filter(|op| op.writes() && !op.reads()) {
            let version = store.latest_key_version(&op.key).unwrap_or(0);
            read_set.push((op.key.clone(), version));
        }
        let write_set = effective_writes(txn, &reads);
        SimulationResult {
            read_set,
            reads,
            write_set,
            snapshot,
        }
    }

    /// Client-side endorsement comparison: with `endorsers` peers simulating
    /// independently, peers whose snapshots lag behind the freshest one by
    /// more than zero versions on any read key return different results, and
    /// the client aborts with `InconsistentRead`. `staleness` carries each
    /// endorser's snapshot version.
    pub fn check_endorsements(&mut self, results: &[SimulationResult]) -> Result<(), AbortReason> {
        if results.len() <= 1 {
            return Ok(());
        }
        let reference = &results[0];
        for other in &results[1..] {
            if other.read_set != reference.read_set {
                self.aborted += 1;
                return Err(AbortReason::InconsistentRead);
            }
        }
        Ok(())
    }

    /// Phase 3: validate a simulation against the current store and commit
    /// its writes if every read version is still current.
    pub fn validate_and_commit(
        &mut self,
        sim: &SimulationResult,
        store: &mut MvccStore,
    ) -> Result<Version, AbortReason> {
        for (key, version_read) in &sim.read_set {
            let current = store.latest_key_version(key).unwrap_or(0);
            if current != *version_read {
                self.aborted += 1;
                return Err(AbortReason::ReadWriteConflict);
            }
        }
        let commit_version = store.begin_commit();
        for (key, value) in &sim.write_set {
            store.commit_write(key.clone(), commit_version, Some(value.clone()));
        }
        self.committed += 1;
        Ok(commit_version)
    }

    /// Convenience: run the full simulate → validate → commit pipeline for a
    /// batch that was simulated upfront and then committed in order — the
    /// exact pattern a Fabric block goes through. Returns per-transaction
    /// outcomes.
    pub fn execute_block(
        &mut self,
        txns: &[Transaction],
        store: &mut MvccStore,
    ) -> Vec<Result<Version, AbortReason>> {
        // All transactions in the block were simulated before ordering, i.e.
        // against (approximately) the same pre-block state.
        let sims: Vec<SimulationResult> = txns.iter().map(|t| self.simulate(t, store)).collect();
        sims.iter()
            .map(|sim| self.validate_and_commit(sim, store))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dichotomy_common::{ClientId, Operation, TxnId};

    fn rmw(seq: u64, key: &str) -> Transaction {
        Transaction::new(
            TxnId::new(ClientId(1), seq),
            vec![Operation::read_modify_write(
                Key::from_str(key),
                Value::filler(8),
            )],
        )
    }

    fn seed(store: &mut MvccStore, keys: &[&str]) {
        let v = store.begin_commit();
        for k in keys {
            store.commit_write(Key::from_str(k), v, Some(Value::filler(4)));
        }
    }

    #[test]
    fn non_conflicting_transactions_all_commit() {
        let mut store = MvccStore::new();
        seed(&mut store, &["a", "b", "c"]);
        let mut occ = OccExecutor::new();
        let txns = vec![rmw(1, "a"), rmw(2, "b"), rmw(3, "c")];
        let results = occ.execute_block(&txns, &mut store);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(occ.committed(), 3);
        assert_eq!(occ.aborted(), 0);
    }

    #[test]
    fn conflicting_transactions_in_one_block_abort_all_but_the_first() {
        let mut store = MvccStore::new();
        seed(&mut store, &["hot"]);
        let mut occ = OccExecutor::new();
        let txns = vec![rmw(1, "hot"), rmw(2, "hot"), rmw(3, "hot")];
        let results = occ.execute_block(&txns, &mut store);
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(AbortReason::ReadWriteConflict));
        assert_eq!(results[2], Err(AbortReason::ReadWriteConflict));
        assert_eq!(occ.committed(), 1);
        assert_eq!(occ.aborted(), 2);
    }

    #[test]
    fn stale_simulation_aborts_after_interleaved_commit() {
        let mut store = MvccStore::new();
        seed(&mut store, &["x"]);
        let mut occ = OccExecutor::new();
        let sim = occ.simulate(&rmw(1, "x"), &store);
        // Another transaction commits to "x" between simulation and validation.
        let v = store.begin_commit();
        store.commit_write(Key::from_str("x"), v, Some(Value::filler(9)));
        assert_eq!(
            occ.validate_and_commit(&sim, &mut store),
            Err(AbortReason::ReadWriteConflict)
        );
    }

    #[test]
    fn aborted_transactions_leave_no_trace() {
        let mut store = MvccStore::new();
        seed(&mut store, &["x"]);
        let before = store.latest_version();
        let mut occ = OccExecutor::new();
        let sim = occ.simulate(&rmw(1, "x"), &store);
        let v = store.begin_commit();
        store.commit_write(Key::from_str("x"), v, Some(Value::filler(9)));
        let _ = occ.validate_and_commit(&sim, &mut store);
        // Only the interleaved write advanced the version.
        assert_eq!(store.latest_version(), before + 1);
        assert_eq!(store.get_latest(&Key::from_str("x")).unwrap().len(), 9);
    }

    #[test]
    fn blind_writes_conflict_too() {
        let mut store = MvccStore::new();
        seed(&mut store, &["w"]);
        let mut occ = OccExecutor::new();
        let blind = Transaction::new(
            TxnId::new(ClientId(1), 1),
            vec![Operation::write(Key::from_str("w"), Value::filler(8))],
        );
        let sim = occ.simulate(&blind, &store);
        let v = store.begin_commit();
        store.commit_write(Key::from_str("w"), v, Some(Value::filler(7)));
        assert_eq!(
            occ.validate_and_commit(&sim, &mut store),
            Err(AbortReason::ReadWriteConflict)
        );
    }

    #[test]
    fn reads_of_missing_keys_validate_against_version_zero() {
        let mut store = MvccStore::new();
        let mut occ = OccExecutor::new();
        let sim = occ.simulate(&rmw(1, "new"), &store);
        assert_eq!(sim.read_set[0].1, 0);
        assert!(occ.validate_and_commit(&sim, &mut store).is_ok());
    }

    #[test]
    fn mismatching_endorsements_abort_with_inconsistent_read() {
        let mut store = MvccStore::new();
        seed(&mut store, &["k"]);
        let mut occ = OccExecutor::new();
        let txn = rmw(1, "k");
        let sim_fresh = occ.simulate(&txn, &store);
        // A second endorser simulates against a *newer* state (its peer
        // committed another block already).
        let mut lagging_store = MvccStore::new();
        seed(&mut lagging_store, &["k"]);
        let v = lagging_store.begin_commit();
        lagging_store.commit_write(Key::from_str("k"), v, Some(Value::filler(6)));
        let sim_stale = occ.simulate(&txn, &lagging_store);
        assert_eq!(
            occ.check_endorsements(&[sim_fresh.clone(), sim_stale]),
            Err(AbortReason::InconsistentRead)
        );
        // Identical endorsements pass.
        assert!(occ
            .check_endorsements(&[sim_fresh.clone(), sim_fresh])
            .is_ok());
    }
}
